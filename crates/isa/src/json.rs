//! A tiny self-contained JSON layer for ISA specs.
//!
//! The workspace builds hermetically with no external crates, so instead of
//! serde this module provides the few pieces spec serialization needs: a
//! JSON value type preserving object key order, a strict recursive-descent
//! parser, and a pretty printer that matches the `serde_json` layout the
//! spec files were originally written in (2-space indent, `"key": value`).

use std::fmt::Write as _;

/// A parsed JSON value. Objects keep insertion order so specs render with
/// stable, human-diffable field order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation (serde_json `to_string_pretty`
    /// compatible layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring that the whole input is consumed.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{} at byte {}", what, self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return self.err(&format!("duplicate key `{key}` in object"));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let Some(c) = s.chars().next() else {
                        return self.err("unterminated string");
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let src = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5}}"#;
        let v = parse(src).unwrap();
        let back = parse(&v.pretty()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")).and_then(Json::as_f64),
            Some(-2.5)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{not json").is_err());
        assert!(parse("{\"a\": 1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
    }

    #[test]
    fn rejects_duplicate_keys_naming_the_key() {
        let err = parse("{\"mac\": 1, \"mac\": 2}").unwrap_err();
        assert!(
            err.contains("duplicate key `mac`"),
            "error must name the key: {err}"
        );
        // Nested objects are checked too; sibling objects may repeat keys.
        assert!(parse("{\"a\": {\"k\": 1, \"k\": 2}}").is_err());
        assert!(parse("{\"a\": {\"k\": 1}, \"b\": {\"k\": 2}}").is_ok());
    }

    #[test]
    fn pretty_uses_two_space_indent() {
        let v = Json::Obj(vec![("k".into(), Json::Num(8.0))]);
        assert_eq!(v.pretty(), "{\n  \"k\": 8\n}");
    }
}
