//! Pure type-transfer functions shared by inference (`infer`) and by MIR
//! lowering in `matic-mir`, which must type compiler temporaries with the
//! same rules sema used for user variables.

use crate::types::{Class, Shape, Ty};
use matic_frontend::ast::{BinOp, UnOp};

/// Result type of `l op r`, plus whether the operand shapes provably
/// conflict (callers may turn that into a diagnostic).
pub fn binop_result(op: BinOp, l: Ty, r: Ty) -> (Ty, bool) {
    if op.is_comparison() || matches!(op, BinOp::And | BinOp::Or) {
        return match l.shape.broadcast(r.shape) {
            Some(shape) => (Ty::new(Class::Logical, shape), false),
            None => (Ty::new(Class::Logical, Shape::unknown()), true),
        };
    }
    if matches!(op, BinOp::AndAnd | BinOp::OrOr) {
        return (Ty::new(Class::Logical, Shape::scalar()), false);
    }
    let class = l.class.arith(r.class);
    match op {
        BinOp::MatMul => {
            if l.shape.is_scalar() || r.shape.is_scalar() {
                let shape = if l.shape.is_scalar() {
                    r.shape
                } else {
                    l.shape
                };
                (fold_const(op, l, r, Ty::new(class, shape)), false)
            } else {
                (
                    Ty::new(
                        class,
                        Shape {
                            rows: l.shape.rows,
                            cols: r.shape.cols,
                        },
                    ),
                    false,
                )
            }
        }
        BinOp::MatDiv | BinOp::MatLeftDiv | BinOp::MatPow => {
            let shape = l.shape.broadcast(r.shape).unwrap_or_else(Shape::unknown);
            (fold_const(op, l, r, Ty::new(class, shape)), false)
        }
        _ => match l.shape.broadcast(r.shape) {
            Some(shape) => (fold_const(op, l, r, Ty::new(class, shape)), false),
            None => (Ty::new(class, Shape::unknown()), true),
        },
    }
}

/// Result type of a unary operator.
pub fn unop_result(op: UnOp, t: Ty) -> Ty {
    match op {
        UnOp::Neg => Ty {
            class: t.class.arith(Class::Double),
            shape: t.shape,
            constant: t.constant.map(|v| -v),
        },
        UnOp::Plus => t,
        UnOp::Not => Ty::new(Class::Logical, t.shape),
    }
}

/// Constant-folds scalar arithmetic so dimension expressions like `n/2`
/// keep propagating through inference.
pub fn fold_const(op: BinOp, l: Ty, r: Ty, template: Ty) -> Ty {
    let mut out = template;
    if let (Some(a), Some(b)) = (l.constant, r.constant) {
        let v = match op {
            BinOp::Add => Some(a + b),
            BinOp::Sub => Some(a - b),
            BinOp::MatMul | BinOp::ElemMul => Some(a * b),
            BinOp::MatDiv | BinOp::ElemDiv => Some(a / b),
            BinOp::MatLeftDiv | BinOp::ElemLeftDiv => Some(b / a),
            BinOp::MatPow | BinOp::ElemPow => Some(a.powf(b)),
            _ => None,
        };
        if let Some(v) = v {
            if out.shape.is_scalar() {
                out.constant = Some(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Dim;

    #[test]
    fn elementwise_broadcast_and_mismatch() {
        let v = Ty::new(Class::Double, Shape::row(Dim::Known(8)));
        let s = Ty::double_scalar();
        let (t, bad) = binop_result(BinOp::Add, v, s);
        assert!(!bad);
        assert_eq!(t.shape, Shape::row(Dim::Known(8)));

        let w = Ty::new(Class::Double, Shape::row(Dim::Known(4)));
        let (_, bad) = binop_result(BinOp::Add, v, w);
        assert!(bad);
    }

    #[test]
    fn comparison_is_logical() {
        let (t, _) = binop_result(BinOp::Lt, Ty::double_scalar(), Ty::double_scalar());
        assert_eq!(t.class, Class::Logical);
    }

    #[test]
    fn constant_folding() {
        let (t, _) = binop_result(BinOp::MatDiv, Ty::constant(32.0), Ty::constant(2.0));
        assert_eq!(t.constant, Some(16.0));
    }

    #[test]
    fn matmul_shape_rule() {
        let a = Ty::new(Class::Double, Shape::known(2, 5));
        let b = Ty::new(Class::Double, Shape::known(5, 3));
        let (t, _) = binop_result(BinOp::MatMul, a, b);
        assert_eq!(t.shape, Shape::known(2, 3));
    }

    #[test]
    fn unop_not_is_logical() {
        let t = unop_result(UnOp::Not, Ty::double_scalar());
        assert_eq!(t.class, Class::Logical);
        let t = unop_result(UnOp::Neg, Ty::constant(2.0));
        assert_eq!(t.constant, Some(-2.0));
    }
}
