//! The class/shape type lattice used by inference.
//!
//! MATLAB is dynamically typed; the compiler recovers static classes and
//! shapes by abstract interpretation. Both lattices only ever move *up*
//! (toward less knowledge), so fixpoint iteration over loops terminates.

use std::fmt;

/// Element class lattice:
///
/// ```text
///        Unknown
///       /   |
///   Complex |
///      |    |
///    Double Char
///      |   /
///   Logical
/// ```
///
/// `Logical ⊑ Double ⊑ Complex`: a logical is representable as a double, a
/// double as a complex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Comparison result (0/1).
    Logical,
    /// Real double (MATLAB's default class).
    Double,
    /// Complex double.
    Complex,
    /// Character array element.
    Char,
    /// Nothing is known (or a function handle).
    Unknown,
}

impl Class {
    /// Least upper bound of two classes.
    pub fn join(self, other: Class) -> Class {
        use Class::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Logical, Double) | (Double, Logical) => Double,
            (Logical, Complex) | (Complex, Logical) => Complex,
            (Double, Complex) | (Complex, Double) => Complex,
            (Char, Logical) | (Logical, Char) | (Char, Double) | (Double, Char) => Double,
            (Char, Complex) | (Complex, Char) => Complex,
            _ => Unknown,
        }
    }

    /// Whether values of this class may carry a nonzero imaginary part.
    pub fn may_be_complex(self) -> bool {
        matches!(self, Class::Complex | Class::Unknown)
    }

    /// The class of the result of ordinary arithmetic on two operands.
    pub fn arith(self, other: Class) -> Class {
        let j = self.join(other);
        match j {
            Class::Logical | Class::Char => Class::Double,
            c => c,
        }
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Class::Logical => "logical",
            Class::Double => "double",
            Class::Complex => "complex",
            Class::Char => "char",
            Class::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// One dimension extent: known constant or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Compile-time-known extent.
    Known(usize),
    /// Runtime-dependent extent.
    Unknown,
}

impl Dim {
    /// Least upper bound.
    pub fn join(self, other: Dim) -> Dim {
        match (self, other) {
            (Dim::Known(a), Dim::Known(b)) if a == b => Dim::Known(a),
            _ => Dim::Unknown,
        }
    }

    /// The known extent, if any.
    pub fn known(self) -> Option<usize> {
        match self {
            Dim::Known(n) => Some(n),
            Dim::Unknown => None,
        }
    }

    /// Whether the extent is known to be exactly 1.
    pub fn is_one(self) -> bool {
        self == Dim::Known(1)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Known(n) => write!(f, "{n}"),
            Dim::Unknown => f.write_str("?"),
        }
    }
}

/// A 2-D shape `(rows × cols)` with possibly unknown extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape {
    /// Row extent.
    pub rows: Dim,
    /// Column extent.
    pub cols: Dim,
}

impl Shape {
    /// The 1×1 scalar shape.
    pub fn scalar() -> Shape {
        Shape {
            rows: Dim::Known(1),
            cols: Dim::Known(1),
        }
    }

    /// A 1×n row-vector shape.
    pub fn row(n: Dim) -> Shape {
        Shape {
            rows: Dim::Known(1),
            cols: n,
        }
    }

    /// An n×1 column-vector shape.
    pub fn col(n: Dim) -> Shape {
        Shape {
            rows: n,
            cols: Dim::Known(1),
        }
    }

    /// A fully unknown shape.
    pub fn unknown() -> Shape {
        Shape {
            rows: Dim::Unknown,
            cols: Dim::Unknown,
        }
    }

    /// Creates a shape from known extents.
    pub fn known(rows: usize, cols: usize) -> Shape {
        Shape {
            rows: Dim::Known(rows),
            cols: Dim::Known(cols),
        }
    }

    /// Least upper bound of two shapes.
    pub fn join(self, other: Shape) -> Shape {
        Shape {
            rows: self.rows.join(other.rows),
            cols: self.cols.join(other.cols),
        }
    }

    /// Whether this is provably a 1×1 scalar.
    pub fn is_scalar(self) -> bool {
        self.rows.is_one() && self.cols.is_one()
    }

    /// Whether this is provably a vector (one dimension equals 1).
    pub fn is_vector(self) -> bool {
        self.rows.is_one() || self.cols.is_one()
    }

    /// Total element count when both extents are known.
    pub fn numel(self) -> Option<usize> {
        Some(self.rows.known()? * self.cols.known()?)
    }

    /// Shape after transposition.
    pub fn transpose(self) -> Shape {
        Shape {
            rows: self.cols,
            cols: self.rows,
        }
    }

    /// The result shape of an element-wise operation with scalar broadcast,
    /// or `None` when shapes provably conflict.
    pub fn broadcast(self, other: Shape) -> Option<Shape> {
        if self.is_scalar() {
            return Some(other);
        }
        if other.is_scalar() {
            return Some(self);
        }
        let rows = match (self.rows.known(), other.rows.known()) {
            (Some(a), Some(b)) if a != b => return None,
            (Some(a), _) => Dim::Known(a),
            (_, Some(b)) => Dim::Known(b),
            _ => Dim::Unknown,
        };
        let cols = match (self.cols.known(), other.cols.known()) {
            (Some(a), Some(b)) if a != b => return None,
            (Some(a), _) => Dim::Known(a),
            (_, Some(b)) => Dim::Known(b),
            _ => Dim::Unknown,
        };
        Some(Shape { rows, cols })
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// A full inferred type: class plus shape plus (when derivable) a constant
/// real value used for dimension propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ty {
    /// Element class.
    pub class: Class,
    /// Array shape.
    pub shape: Shape,
    /// Known constant value (scalars only) for constant propagation.
    pub constant: Option<f64>,
}

impl Ty {
    /// A real scalar type.
    pub fn double_scalar() -> Ty {
        Ty {
            class: Class::Double,
            shape: Shape::scalar(),
            constant: None,
        }
    }

    /// A known real constant.
    pub fn constant(v: f64) -> Ty {
        Ty {
            class: Class::Double,
            shape: Shape::scalar(),
            constant: Some(v),
        }
    }

    /// A type with given class and shape, no constant.
    pub fn new(class: Class, shape: Shape) -> Ty {
        Ty {
            class,
            shape,
            constant: None,
        }
    }

    /// The fully unknown type.
    pub fn unknown() -> Ty {
        Ty {
            class: Class::Unknown,
            shape: Shape::unknown(),
            constant: None,
        }
    }

    /// Least upper bound.
    pub fn join(self, other: Ty) -> Ty {
        Ty {
            class: self.class.join(other.class),
            shape: self.shape.join(other.shape),
            constant: match (self.constant, other.constant) {
                (Some(a), Some(b)) if a == b => Some(a),
                _ => None,
            },
        }
    }

    /// The constant as a nonnegative integer (for dimension arguments).
    pub fn const_usize(self) -> Option<usize> {
        let v = self.constant?;
        if v >= 0.0 && v == v.trunc() {
            Some(v as usize)
        } else {
            None
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.class, self.shape)?;
        if let Some(c) = self.constant {
            write!(f, " (= {c})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_join_lattice() {
        assert_eq!(Class::Double.join(Class::Complex), Class::Complex);
        assert_eq!(Class::Logical.join(Class::Double), Class::Double);
        assert_eq!(Class::Char.join(Class::Double), Class::Double);
        assert_eq!(Class::Unknown.join(Class::Double), Class::Unknown);
        assert_eq!(Class::Double.join(Class::Double), Class::Double);
    }

    #[test]
    fn join_is_commutative() {
        let all = [
            Class::Logical,
            Class::Double,
            Class::Complex,
            Class::Char,
            Class::Unknown,
        ];
        for a in all {
            for b in all {
                assert_eq!(a.join(b), b.join(a), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn arith_promotes_logical_to_double() {
        assert_eq!(Class::Logical.arith(Class::Logical), Class::Double);
        assert_eq!(Class::Double.arith(Class::Complex), Class::Complex);
    }

    #[test]
    fn dim_join() {
        assert_eq!(Dim::Known(4).join(Dim::Known(4)), Dim::Known(4));
        assert_eq!(Dim::Known(4).join(Dim::Known(5)), Dim::Unknown);
        assert_eq!(Dim::Known(4).join(Dim::Unknown), Dim::Unknown);
    }

    #[test]
    fn shape_predicates() {
        assert!(Shape::scalar().is_scalar());
        assert!(Shape::row(Dim::Unknown).is_vector());
        assert!(!Shape::unknown().is_vector());
        assert_eq!(Shape::known(2, 3).numel(), Some(6));
        assert_eq!(Shape::row(Dim::Unknown).numel(), None);
    }

    #[test]
    fn broadcast_rules() {
        let s = Shape::scalar();
        let v = Shape::row(Dim::Known(8));
        assert_eq!(s.broadcast(v), Some(v));
        assert_eq!(v.broadcast(s), Some(v));
        assert_eq!(v.broadcast(v), Some(v));
        let w = Shape::row(Dim::Known(4));
        assert_eq!(v.broadcast(w), None);
        // Unknown dims merge optimistically.
        let u = Shape::row(Dim::Unknown);
        assert_eq!(v.broadcast(u), Some(v));
    }

    #[test]
    fn transpose_swaps() {
        let s = Shape::known(2, 5).transpose();
        assert_eq!(s, Shape::known(5, 2));
    }

    #[test]
    fn ty_join_drops_conflicting_constants() {
        let a = Ty::constant(3.0);
        let b = Ty::constant(3.0);
        assert_eq!(a.join(b).constant, Some(3.0));
        let c = Ty::constant(4.0);
        assert_eq!(a.join(c).constant, None);
    }

    #[test]
    fn const_usize_filters() {
        assert_eq!(Ty::constant(5.0).const_usize(), Some(5));
        assert_eq!(Ty::constant(-1.0).const_usize(), None);
        assert_eq!(Ty::constant(2.5).const_usize(), None);
        assert_eq!(Ty::double_scalar().const_usize(), None);
    }
}
