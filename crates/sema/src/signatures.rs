//! Shape/class transfer functions for builtins — the signature database
//! sema consults when a call resolves to a MATLAB builtin.

use crate::types::{Class, Dim, Shape, Ty};

/// Infers the primary-output type of builtin `name` applied to `args`.
///
/// Returns `None` for unknown builtins. Unknown argument information
/// degrades gracefully toward [`Ty::unknown`]-ish results rather than
/// failing.
pub fn builtin_result(name: &str, args: &[Ty]) -> Option<Ty> {
    let first = args.first().copied().unwrap_or_else(Ty::unknown);
    Some(match name {
        // Constants.
        "pi" | "eps" | "Inf" | "inf" | "NaN" | "nan" => Ty::double_scalar(),
        "i" | "j" => Ty::new(Class::Complex, Shape::scalar()),

        // Constructors whose shape comes from constant dimension args.
        "zeros" | "ones" | "eye" | "rand" | "randn" => {
            let shape = dims_shape(args);
            Ty::new(Class::Double, shape)
        }
        "linspace" => {
            let n = args.get(2).and_then(|t| t.const_usize());
            Ty::new(
                Class::Double,
                Shape::row(n.map_or(Dim::Unknown, Dim::Known)),
            )
        }
        "complex" => Ty::new(Class::Complex, first.shape),

        // Shape queries.
        "length" | "numel" => Ty::double_scalar(),
        "size" => {
            if args.len() > 1 {
                Ty::double_scalar()
            } else {
                Ty::new(Class::Double, Shape::known(1, 2))
            }
        }
        "isempty" | "isreal" | "isscalar" | "isvector" => Ty::new(Class::Logical, Shape::scalar()),

        // Real-result element-wise maps.
        "abs" | "real" | "imag" | "angle" => Ty::new(Class::Double, first.shape),
        "floor" | "ceil" | "round" | "fix" | "sign" | "sin" | "cos" | "tan" | "asin" | "acos"
        | "atan" | "log2" | "log10" => Ty::new(Class::Double, first.shape),

        // Class-preserving element-wise maps.
        "conj" => Ty::new(first.class, first.shape),
        "sqrt" | "exp" | "log" => {
            // May go complex for negative reals; stay conservative only
            // when the input might be complex already.
            let class = if first.class == Class::Complex || first.class == Class::Unknown {
                Class::Complex
            } else {
                Class::Double
            };
            Ty::new(class, first.shape)
        }

        // Binary element-wise.
        "atan2" | "mod" | "rem" => {
            let second = args.get(1).copied().unwrap_or_else(Ty::unknown);
            let shape = first
                .shape
                .broadcast(second.shape)
                .unwrap_or_else(Shape::unknown);
            Ty::new(Class::Double, shape)
        }
        "min" | "max" => {
            if args.len() >= 2 {
                let second = args[1];
                let shape = first
                    .shape
                    .broadcast(second.shape)
                    .unwrap_or_else(Shape::unknown);
                Ty::new(first.class.arith(second.class), shape)
            } else {
                Ty::new(reduce_class(first.class), reduce_shape(first.shape))
            }
        }

        // Reductions.
        "sum" | "prod" | "mean" => Ty::new(reduce_class(first.class), reduce_shape(first.shape)),
        "any" | "all" => Ty::new(Class::Logical, reduce_shape(first.shape)),
        "cumsum" => Ty::new(reduce_class(first.class), first.shape),
        "dot" => {
            let second = args.get(1).copied().unwrap_or_else(Ty::unknown);
            Ty::new(first.class.arith(second.class), Shape::scalar())
        }
        "norm" => Ty::double_scalar(),
        "find" => Ty::new(Class::Double, Shape::unknown()),

        // Reshaping.
        "fliplr" | "flipud" => Ty::new(first.class, first.shape),
        "reshape" => {
            let r = args.get(1).and_then(|t| t.const_usize());
            let c = args.get(2).and_then(|t| t.const_usize());
            Ty::new(
                first.class,
                Shape {
                    rows: r.map_or(Dim::Unknown, Dim::Known),
                    cols: c.map_or(Dim::Unknown, Dim::Known),
                },
            )
        }
        "repmat" => Ty::new(first.class, Shape::unknown()),

        // I/O and misc.
        "disp" | "fprintf" | "rng" | "error" => Ty::new(Class::Unknown, Shape::unknown()),
        "sprintf" | "num2str" => Ty::new(Class::Char, Shape::row(Dim::Unknown)),
        "deal" | "feval" => Ty::unknown(),

        _ => return None,
    })
}

/// Number of outputs sema should assume for a builtin in multi-assignment.
pub fn builtin_nargout_types(name: &str, args: &[Ty], nargout: usize) -> Option<Vec<Ty>> {
    let primary = builtin_result(name, args)?;
    let mut outs = vec![primary];
    match name {
        "size" if nargout >= 2 => {
            outs = vec![Ty::double_scalar(); nargout];
        }
        "min" | "max" if nargout >= 2 => {
            outs.push(Ty::new(Class::Double, reduce_shape(args.first()?.shape)));
        }
        "deal" => {
            outs = vec![args.first().copied().unwrap_or_else(Ty::unknown); nargout.max(1)];
        }
        _ => {}
    }
    Some(outs)
}

fn reduce_class(c: Class) -> Class {
    match c {
        Class::Logical | Class::Char => Class::Double,
        other => other,
    }
}

/// MATLAB reduction shape: vectors → scalar, matrices → row of column
/// results, unknown → unknown.
fn reduce_shape(s: Shape) -> Shape {
    if s.is_vector() || s.is_scalar() {
        Shape::scalar()
    } else if s.cols.known().is_some() {
        Shape::row(s.cols)
    } else {
        Shape::unknown()
    }
}

/// `zeros(n)`, `zeros(r, c)` shape computation from constant args.
fn dims_shape(args: &[Ty]) -> Shape {
    match args.len() {
        0 => Shape::scalar(),
        1 => {
            let n = args[0].const_usize();
            Shape {
                rows: n.map_or(Dim::Unknown, Dim::Known),
                cols: n.map_or(Dim::Unknown, Dim::Known),
            }
        }
        _ => Shape {
            rows: args[0].const_usize().map_or(Dim::Unknown, Dim::Known),
            cols: args[1].const_usize().map_or(Dim::Unknown, Dim::Known),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_with_constant_dims() {
        let t = builtin_result("zeros", &[Ty::constant(1.0), Ty::constant(64.0)]).unwrap();
        assert_eq!(t.shape, Shape::known(1, 64));
        assert_eq!(t.class, Class::Double);
    }

    #[test]
    fn zeros_square_form() {
        let t = builtin_result("zeros", &[Ty::constant(8.0)]).unwrap();
        assert_eq!(t.shape, Shape::known(8, 8));
    }

    #[test]
    fn abs_returns_real_same_shape() {
        let arg = Ty::new(Class::Complex, Shape::row(Dim::Known(16)));
        let t = builtin_result("abs", &[arg]).unwrap();
        assert_eq!(t.class, Class::Double);
        assert_eq!(t.shape, Shape::row(Dim::Known(16)));
    }

    #[test]
    fn sum_of_vector_is_scalar() {
        let arg = Ty::new(Class::Double, Shape::row(Dim::Unknown));
        let t = builtin_result("sum", &[arg]).unwrap();
        assert!(t.shape.is_scalar());
    }

    #[test]
    fn sum_of_matrix_is_row() {
        let arg = Ty::new(Class::Double, Shape::known(4, 7));
        let t = builtin_result("sum", &[arg]).unwrap();
        assert_eq!(t.shape, Shape::row(Dim::Known(7)));
    }

    #[test]
    fn conj_preserves_complex() {
        let arg = Ty::new(Class::Complex, Shape::scalar());
        assert_eq!(
            builtin_result("conj", &[arg]).unwrap().class,
            Class::Complex
        );
        let arg = Ty::new(Class::Double, Shape::scalar());
        assert_eq!(builtin_result("conj", &[arg]).unwrap().class, Class::Double);
    }

    #[test]
    fn unknown_builtin_is_none() {
        assert!(builtin_result("fft_magic", &[]).is_none());
    }

    #[test]
    fn min_two_outputs() {
        let arg = Ty::new(Class::Double, Shape::row(Dim::Known(5)));
        let outs = builtin_nargout_types("min", &[arg], 2).unwrap();
        assert_eq!(outs.len(), 2);
        assert!(outs[1].shape.is_scalar());
    }

    #[test]
    fn sqrt_of_known_real_may_stay_double() {
        let t = builtin_result("sqrt", &[Ty::double_scalar()]).unwrap();
        assert_eq!(t.class, Class::Double);
        let t = builtin_result("sqrt", &[Ty::new(Class::Complex, Shape::scalar())]).unwrap();
        assert_eq!(t.class, Class::Complex);
    }
}
