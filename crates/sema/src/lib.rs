//! # matic-sema
//!
//! Semantic analysis for the matic compiler: resolves the MATLAB
//! call-vs-index ambiguity, infers element classes (logical / double /
//! complex / char) and 2-D shapes, and performs the scalar constant
//! propagation needed to size arrays like `zeros(1, n/2)`.
//!
//! Inference is an upward-moving abstract interpretation over finite
//! lattices; see [`infer`] for the algorithm and its documented static
//! approximations.
//!
//! # Examples
//!
//! ```
//! use matic_sema::{analyze, Ty, Class, Shape, Dim};
//!
//! let (program, diags) = matic_frontend::parse(
//!     "function y = gain(x)\ny = 2 .* x;\nend",
//! );
//! assert!(!diags.has_errors());
//! let arg = Ty::new(Class::Double, Shape::row(Dim::Known(256)));
//! let analysis = analyze(&program, "gain", &[arg]);
//! let y = analysis.function("gain").unwrap().var_ty("y");
//! assert_eq!(y.shape, Shape::row(Dim::Known(256)));
//! ```

pub mod infer;
pub mod signatures;
pub mod transfer;
pub mod types;

pub use infer::{analyze, analyze_script, Analysis, FunctionInfo, SCRIPT_FN};
pub use signatures::{builtin_nargout_types, builtin_result};
pub use transfer::{binop_result, unop_result};
pub use types::{Class, Dim, Shape, Ty};
