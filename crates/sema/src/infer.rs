//! Class/shape inference by abstract interpretation over the AST.
//!
//! Inference is flow-insensitive per variable within a function (a single
//! type per variable, the join of everything assigned to it) and iterates
//! each function body to a fixpoint, which terminates because both
//! lattices are finite-height and only move upward.
//!
//! ## Static approximations
//!
//! Like MATLAB Coder, `sqrt`/`log`/`^` of a statically-real operand are
//! assumed to stay real; programs that rely on `sqrt(-1)` producing `1i`
//! must introduce complexness explicitly (e.g. via `complex()` or an
//! imaginary literal). The differential tests against the interpreter
//! enforce that this approximation is sound for all shipped benchmarks.

use crate::signatures::{builtin_nargout_types, builtin_result};
use crate::types::{Class, Dim, Shape, Ty};
use matic_frontend::ast::*;
use matic_frontend::diag::DiagnosticBag;
use matic_frontend::span::Span;
use std::collections::HashMap;

/// Inference results for one analyzed function.
#[derive(Debug, Clone)]
pub struct FunctionInfo {
    /// Function name (`"<script>"` for the script part).
    pub name: String,
    /// Types of the formal parameters it was analyzed with.
    pub params: Vec<Ty>,
    /// Final type of every variable assigned in the body.
    pub vars: HashMap<String, Ty>,
    /// Types of the declared outputs.
    pub outputs: Vec<Ty>,
}

impl FunctionInfo {
    /// The inferred type of `var`, or unknown.
    pub fn var_ty(&self, var: &str) -> Ty {
        self.vars.get(var).copied().unwrap_or_else(Ty::unknown)
    }
}

/// Whole-program analysis: per-function variable types plus diagnostics.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Analyzed functions by name (including `"<script>"`).
    pub functions: HashMap<String, FunctionInfo>,
    /// Warnings and errors discovered during analysis.
    pub diags: DiagnosticBag,
}

impl Analysis {
    /// Info for one function.
    pub fn function(&self, name: &str) -> Option<&FunctionInfo> {
        self.functions.get(name)
    }
}

/// Name of the pseudo-function holding script statements.
pub const SCRIPT_FN: &str = "<script>";

/// Analyzes `program` starting from `entry` called with `arg_types`.
///
/// Every user function transitively reachable from the entry is analyzed.
/// Use [`analyze_script`] for script files.
pub fn analyze(program: &Program, entry: &str, arg_types: &[Ty]) -> Analysis {
    let mut cx = InferCx {
        program,
        functions: HashMap::new(),
        diags: DiagnosticBag::new(),
        stack: Vec::new(),
    };
    if let Some(func) = program.function(entry) {
        // The entry signature is the ABI boundary: unlike internal calls
        // (where trailing parameters may legitimately be absent under
        // `nargin` guards), every entry parameter must be bound to a
        // concrete type or downstream stages see unknowns.
        if func.params.len() != arg_types.len() {
            cx.diags.error(
                format!(
                    "entry `{entry}` expects {} argument{}, signature provides {}",
                    func.params.len(),
                    if func.params.len() == 1 { "" } else { "s" },
                    arg_types.len()
                ),
                func.span,
            );
        } else {
            cx.analyze_function(entry, arg_types.to_vec(), Span::dummy());
        }
    } else {
        cx.diags
            .error(format!("entry function `{entry}` not found"), Span::dummy());
    }
    Analysis {
        functions: cx.functions,
        diags: cx.diags,
    }
}

/// Analyzes the script part of `program` (plus everything it calls).
pub fn analyze_script(program: &Program) -> Analysis {
    let mut cx = InferCx {
        program,
        functions: HashMap::new(),
        diags: DiagnosticBag::new(),
        stack: Vec::new(),
    };
    let mut vars: HashMap<String, Ty> = HashMap::new();
    cx.infer_body_fixpoint(&program.script, &mut vars);
    cx.functions.insert(
        SCRIPT_FN.to_string(),
        FunctionInfo {
            name: SCRIPT_FN.to_string(),
            params: Vec::new(),
            vars,
            outputs: Vec::new(),
        },
    );
    Analysis {
        functions: cx.functions,
        diags: cx.diags,
    }
}

struct InferCx<'p> {
    program: &'p Program,
    functions: HashMap<String, FunctionInfo>,
    diags: DiagnosticBag,
    /// Call stack for recursion detection.
    stack: Vec<String>,
}

impl<'p> InferCx<'p> {
    /// Analyzes (or re-analyzes with widened parameters) one function and
    /// returns its output types.
    fn analyze_function(&mut self, name: &str, args: Vec<Ty>, call_span: Span) -> Vec<Ty> {
        let Some(func) = self.program.function(name) else {
            self.diags
                .error(format!("call to undefined function `{name}`"), call_span);
            return vec![Ty::unknown()];
        };
        // Pad missing arguments with unknown.
        let mut params: Vec<Ty> = args;
        params.resize(func.params.len(), Ty::unknown());

        if self.stack.contains(&name.to_string()) {
            // Recursive call: use the current ascending approximation.
            return self
                .functions
                .get(name)
                .map(|fi| fi.outputs.clone())
                .unwrap_or_else(|| vec![recursion_seed(); func.outputs.len().max(1)]);
        }
        // Reuse a previous analysis when parameters are unchanged or wider.
        if let Some(prev) = self.functions.get(name) {
            let joined: Vec<Ty> = prev
                .params
                .iter()
                .zip(&params)
                .map(|(a, b)| a.join(*b))
                .collect();
            if joined == prev.params {
                return prev.outputs.clone();
            }
            params = joined;
        }

        let func = func.clone();
        self.stack.push(name.to_string());
        // Recursive calls start from a pseudo-bottom (the least element of
        // both lattices) so the fixpoint ascends instead of being poisoned
        // by ⊤; the outer loop re-runs the body until outputs stabilize.
        let mut guess = vec![recursion_seed(); func.outputs.len().max(1)];
        let mut vars: HashMap<String, Ty> = HashMap::new();
        for _ in 0..6 {
            self.functions.insert(
                name.to_string(),
                FunctionInfo {
                    name: name.to_string(),
                    params: params.clone(),
                    vars: HashMap::new(),
                    outputs: guess.clone(),
                },
            );
            vars = HashMap::new();
            for (p, t) in func.params.iter().zip(&params) {
                vars.insert(p.clone(), *t);
            }
            vars.insert("nargin".into(), Ty::double_scalar());
            vars.insert("nargout".into(), Ty::double_scalar());
            self.infer_body_fixpoint(&func.body, &mut vars);
            let outputs: Vec<Ty> = func
                .outputs
                .iter()
                .map(|o| vars.get(o).copied().unwrap_or_else(Ty::unknown))
                .collect();
            let widened: Vec<Ty> = guess
                .iter()
                .zip(&outputs)
                .map(|(g, o)| g.join(*o))
                .collect();
            if widened == guess {
                break;
            }
            guess = widened;
        }
        self.functions.insert(
            name.to_string(),
            FunctionInfo {
                name: name.to_string(),
                params,
                vars,
                outputs: guess.clone(),
            },
        );
        self.stack.pop();
        guess
    }

    fn infer_body_fixpoint(&mut self, body: &[Stmt], vars: &mut HashMap<String, Ty>) {
        // Two lattices of height ≤ 3 per var: a handful of passes suffices;
        // the bound guards pathological interactions through calls.
        for _ in 0..8 {
            let before = vars.clone();
            for stmt in body {
                self.infer_stmt(stmt, vars);
            }
            if *vars == before {
                break;
            }
        }
    }

    fn infer_stmt(&mut self, stmt: &Stmt, vars: &mut HashMap<String, Ty>) {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                let ty = self.infer_expr(value, vars);
                self.assign_target(target, ty, vars);
            }
            Stmt::MultiAssign { targets, call, .. } => {
                let outs = self.infer_multi(call, targets.len(), vars);
                for (t, ty) in targets.iter().zip(outs) {
                    if let Some(t) = t {
                        self.assign_target(t, ty, vars);
                    }
                }
            }
            Stmt::ExprStmt { expr, .. } => {
                let ty = self.infer_expr(expr, vars);
                join_var(vars, "ans", ty);
            }
            Stmt::If {
                arms, else_body, ..
            } => {
                for (cond, body) in arms {
                    self.infer_expr(cond, vars);
                    for s in body {
                        self.infer_stmt(s, vars);
                    }
                }
                if let Some(body) = else_body {
                    for s in body {
                        self.infer_stmt(s, vars);
                    }
                }
            }
            Stmt::For {
                var, iter, body, ..
            } => {
                let seq = self.infer_expr(iter, vars);
                // Loop variable: scalar element of the iterated value (or a
                // column for matrix iteration).
                let elem = if seq.shape.is_vector() || seq.shape.is_scalar() {
                    Ty::new(seq.class, Shape::scalar())
                } else {
                    Ty::new(seq.class, Shape::col(seq.shape.rows))
                };
                join_var(vars, var, elem);
                for s in body {
                    self.infer_stmt(s, vars);
                }
            }
            Stmt::While { cond, body, .. } => {
                self.infer_expr(cond, vars);
                for s in body {
                    self.infer_stmt(s, vars);
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) | Stmt::Return(_) => {}
            Stmt::Global { names, .. } => {
                for n in names {
                    join_var(vars, n, Ty::unknown());
                }
            }
        }
    }

    fn assign_target(&mut self, target: &LValue, ty: Ty, vars: &mut HashMap<String, Ty>) {
        match target {
            LValue::Name { name, .. } => {
                // Plain assignment replaces, but joins across loop passes:
                // we implement "join" so fixpoint iteration is monotone.
                join_var(vars, name, ty);
            }
            LValue::Index { name, indices, .. } => {
                for e in indices {
                    self.infer_expr(e, vars);
                }
                // Element assignment: the array's class joins with the
                // element's class; shape may grow, so join with unknown
                // dims conservatively only when not previously known.
                let existing = vars.get(name.as_str()).copied().unwrap_or(Ty {
                    class: Class::Double,
                    shape: if indices.len() == 1 {
                        Shape::row(Dim::Unknown)
                    } else {
                        Shape::unknown()
                    },
                    constant: None,
                });
                let merged = Ty {
                    class: existing.class.join(elem_class(ty.class)),
                    shape: existing.shape,
                    constant: None,
                };
                vars.insert(name.clone(), merged);
            }
        }
    }

    fn infer_multi(
        &mut self,
        call: &Expr,
        nargout: usize,
        vars: &mut HashMap<String, Ty>,
    ) -> Vec<Ty> {
        if let Expr::Call { name, args, span } = call {
            if !vars.contains_key(name.as_str()) {
                let arg_tys: Vec<Ty> = args.iter().map(|a| self.infer_expr(a, vars)).collect();
                if self.program.function(name).is_some() {
                    let mut outs = self.analyze_function(name, arg_tys, *span);
                    outs.resize(nargout, Ty::unknown());
                    return outs;
                }
                if let Some(outs) = builtin_nargout_types(name, &arg_tys, nargout) {
                    let mut outs = outs;
                    outs.resize(nargout, Ty::unknown());
                    return outs;
                }
            }
        }
        let single = self.infer_expr(call, vars);
        let mut outs = vec![single];
        outs.resize(nargout, Ty::unknown());
        outs
    }

    fn infer_expr(&mut self, expr: &Expr, vars: &mut HashMap<String, Ty>) -> Ty {
        match expr {
            Expr::Number { value, .. } => Ty::constant(*value),
            Expr::Imaginary { .. } => Ty::new(Class::Complex, Shape::scalar()),
            Expr::Str { value, .. } => {
                Ty::new(Class::Char, Shape::row(Dim::Known(value.chars().count())))
            }
            Expr::Ident { name, span } => {
                if let Some(t) = vars.get(name.as_str()) {
                    return *t;
                }
                if self.program.function(name).is_some() {
                    let outs = self.analyze_function(name, vec![], *span);
                    return outs.first().copied().unwrap_or_else(Ty::unknown);
                }
                if let Some(t) = builtin_result(name, &[]) {
                    return t;
                }
                self.diags
                    .error(format!("undefined variable or function `{name}`"), *span);
                Ty::unknown()
            }
            Expr::Call { name, args, span } => {
                if let Some(base) = vars.get(name.as_str()).copied() {
                    // Indexing a variable. Pre-compute constant range
                    // lengths so slice results keep known extents.
                    let mut range_lens = Vec::with_capacity(args.len());
                    for a in args {
                        let l = if let Expr::Range {
                            start, step, stop, ..
                        } = a
                        {
                            let st = self.infer_expr(start, vars).constant;
                            let sp = match step {
                                Some(e) => self.infer_expr(e, vars).constant,
                                None => Some(1.0),
                            };
                            let en = self.infer_expr(stop, vars).constant;
                            range_len(st, sp, en)
                        } else {
                            self.infer_expr(a, vars);
                            None
                        };
                        range_lens.push(l);
                    }
                    return index_result(base, args, &range_lens);
                }
                let arg_tys: Vec<Ty> = args.iter().map(|a| self.infer_expr(a, vars)).collect();
                if self.program.function(name).is_some() {
                    let outs = self.analyze_function(name, arg_tys, *span);
                    return outs.first().copied().unwrap_or_else(Ty::unknown);
                }
                if let Some(t) = builtin_result(name, &arg_tys) {
                    return t;
                }
                self.diags
                    .error(format!("call to undefined function `{name}`"), *span);
                Ty::unknown()
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let l = self.infer_expr(lhs, vars);
                let r = self.infer_expr(rhs, vars);
                self.infer_binop(*op, l, r, *span)
            }
            Expr::Unary { op, operand, .. } => {
                let t = self.infer_expr(operand, vars);
                crate::transfer::unop_result(*op, t)
            }
            Expr::Transpose { operand, .. } => {
                let t = self.infer_expr(operand, vars);
                Ty::new(t.class, t.shape.transpose())
            }
            Expr::Range {
                start, step, stop, ..
            } => {
                let s = self.infer_expr(start, vars);
                let st = step.as_ref().map(|x| self.infer_expr(x, vars));
                let e = self.infer_expr(stop, vars);
                let len = range_len(
                    s.constant,
                    st.and_then(|t| t.constant)
                        .or(if step.is_none() { Some(1.0) } else { None }),
                    e.constant,
                );
                Ty::new(
                    Class::Double,
                    Shape::row(len.map_or(Dim::Unknown, Dim::Known)),
                )
            }
            Expr::ColonAll { .. } => Ty::new(Class::Double, Shape::row(Dim::Unknown)),
            Expr::EndKeyword { .. } => Ty::double_scalar(),
            Expr::Matrix { rows, .. } => self.infer_matrix(rows, vars),
            Expr::AnonFn { .. } | Expr::FnHandle { .. } => Ty::unknown(),
        }
    }

    fn infer_binop(&mut self, op: BinOp, l: Ty, r: Ty, span: Span) -> Ty {
        let (ty, mismatch) = crate::transfer::binop_result(op, l, r);
        if mismatch {
            self.diags.warning("operand shapes provably mismatch", span);
        }
        ty
    }

    fn infer_matrix(&mut self, rows: &[Vec<Expr>], vars: &mut HashMap<String, Ty>) -> Ty {
        if rows.is_empty() {
            return Ty::new(Class::Double, Shape::known(0, 0));
        }
        let mut class = Class::Logical; // bottom-most start, join upward
        let mut total_cols: Option<usize> = Some(0);
        let mut total_rows: Option<usize> = Some(0);
        let mut first = true;
        for row in rows {
            let mut row_cols: Option<usize> = Some(0);
            let mut row_rows: Option<usize> = Some(1);
            for e in row {
                let t = self.infer_expr(e, vars);
                class = class.join(elem_class(t.class));
                row_cols = match (row_cols, t.shape.cols.known()) {
                    (Some(a), Some(b)) => Some(a + b),
                    _ => None,
                };
                row_rows = match (row_rows, t.shape.rows.known()) {
                    (Some(_), Some(b)) => Some(b),
                    _ => None,
                };
            }
            if first {
                total_cols = row_cols;
                first = false;
            } else if total_cols != row_cols {
                total_cols = None;
            }
            total_rows = match (total_rows, row_rows) {
                (Some(a), Some(b)) => Some(a + b),
                _ => None,
            };
        }
        Ty::new(
            class,
            Shape {
                rows: total_rows.map_or(Dim::Unknown, Dim::Known),
                cols: total_cols.map_or(Dim::Unknown, Dim::Known),
            },
        )
    }
}

/// Pseudo-bottom for recursive output seeding: the least element of both
/// lattices (a 1×1 logical joins upward into anything).
fn recursion_seed() -> Ty {
    Ty::new(Class::Logical, Shape::scalar())
}

/// Class of a value once it is stored as a matrix element.
fn elem_class(c: Class) -> Class {
    match c {
        Class::Logical | Class::Char => Class::Double,
        other => other,
    }
}

fn join_var(vars: &mut HashMap<String, Ty>, name: &str, ty: Ty) {
    let merged = match vars.get(name) {
        Some(prev) => prev.join(ty),
        None => ty,
    };
    vars.insert(name.to_string(), merged);
}

/// Result type of `base(args...)` indexing. `range_lens` carries the
/// statically known length of each `Range` subscript (parallel to `args`).
fn index_result(base: Ty, args: &[Expr], range_lens: &[Option<usize>]) -> Ty {
    let class = base.class;
    let dim_of = |k: usize| -> Dim {
        range_lens
            .get(k)
            .copied()
            .flatten()
            .map_or(Dim::Unknown, Dim::Known)
    };
    match args.len() {
        0 => base,
        1 => match &args[0] {
            Expr::ColonAll { .. } => Ty::new(class, Shape::col(Dim::Unknown)),
            Expr::Range { .. } => Ty::new(class, Shape::row(dim_of(0))),
            _ => {
                // Scalar index → scalar element; everything else unknown
                // vector. A literal/ident index is almost always scalar in
                // kernel code.
                Ty::new(class, Shape::scalar())
            }
        },
        2 => {
            let rows = match &args[0] {
                Expr::ColonAll { .. } => base.shape.rows,
                Expr::Range { .. } => dim_of(0),
                _ => Dim::Known(1),
            };
            let cols = match &args[1] {
                Expr::ColonAll { .. } => base.shape.cols,
                Expr::Range { .. } => dim_of(1),
                _ => Dim::Known(1),
            };
            Ty::new(class, Shape { rows, cols })
        }
        _ => Ty::new(class, Shape::unknown()),
    }
}

fn range_len(start: Option<f64>, step: Option<f64>, stop: Option<f64>) -> Option<usize> {
    let (s, st, e) = (start?, step?, stop?);
    if st == 0.0 || (st > 0.0 && s > e) || (st < 0.0 && s < e) {
        return Some(0);
    }
    Some(((e - s) / st + 1e-10).floor() as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matic_frontend::parse;

    fn analyze_src(src: &str, entry: &str, args: &[Ty]) -> Analysis {
        let (p, diags) = parse(src);
        assert!(!diags.has_errors(), "parse: {:?}", diags.into_vec());
        analyze(&p, entry, args)
    }

    #[test]
    fn scalar_arithmetic_types() {
        let a = analyze_src(
            "function y = f(x)\ny = 2 * x + 1;\nend",
            "f",
            &[Ty::double_scalar()],
        );
        let f = a.function("f").unwrap();
        assert_eq!(f.var_ty("y").class, Class::Double);
        assert!(f.var_ty("y").shape.is_scalar());
    }

    #[test]
    fn complex_propagates() {
        let a = analyze_src(
            "function y = f(x)\ny = (1 + 2i) * x;\nend",
            "f",
            &[Ty::double_scalar()],
        );
        assert_eq!(a.function("f").unwrap().var_ty("y").class, Class::Complex);
    }

    #[test]
    fn vector_parameter_shapes() {
        let arg = Ty::new(Class::Double, Shape::row(Dim::Known(64)));
        let a = analyze_src("function y = f(x)\ny = x .* x;\nend", "f", &[arg]);
        assert_eq!(
            a.function("f").unwrap().var_ty("y").shape,
            Shape::row(Dim::Known(64))
        );
    }

    #[test]
    fn zeros_shape_from_length() {
        let arg = Ty::new(Class::Double, Shape::row(Dim::Known(16)));
        let a = analyze_src(
            "function y = f(x)\nn = length(x);\ny = zeros(1, n);\nend",
            "f",
            &[arg],
        );
        // n is not constant → shape cols unknown but row-ness known.
        let y = a.function("f").unwrap().var_ty("y");
        assert_eq!(y.shape.rows, Dim::Known(1));
    }

    #[test]
    fn constant_dims_propagate() {
        let a = analyze_src("function y = f()\ny = zeros(1, 64);\nend", "f", &[]);
        assert_eq!(
            a.function("f").unwrap().var_ty("y").shape,
            Shape::known(1, 64)
        );
    }

    #[test]
    fn loop_join_widens() {
        // x is 1.0 then grows complex in the loop → Complex after fixpoint.
        let a = analyze_src(
            "function y = f(n)\nx = 1;\nfor k = 1:n\n x = x * 1i;\nend\ny = x;\nend",
            "f",
            &[Ty::double_scalar()],
        );
        assert_eq!(a.function("f").unwrap().var_ty("y").class, Class::Complex);
    }

    #[test]
    fn callee_analysis() {
        let src =
            "function y = top(x)\ny = helper(x) + 1;\nend\nfunction z = helper(x)\nz = 2 * x;\nend";
        let a = analyze_src(src, "top", &[Ty::double_scalar()]);
        assert!(a.function("helper").is_some());
        assert_eq!(a.function("top").unwrap().var_ty("y").class, Class::Double);
    }

    #[test]
    fn recursion_terminates() {
        let src = "function y = f(n)\nif n <= 1\n y = 1;\nelse\n y = n * f(n - 1);\nend\nend";
        let a = analyze_src(src, "f", &[Ty::double_scalar()]);
        assert_eq!(a.function("f").unwrap().outputs.len(), 1);
    }

    #[test]
    fn undefined_variable_diagnosed() {
        let a = analyze_src("function y = f()\ny = mystery + 1;\nend", "f", &[]);
        assert!(a.diags.has_errors());
    }

    #[test]
    fn indexing_scalar_element() {
        let arg = Ty::new(Class::Complex, Shape::row(Dim::Known(8)));
        let a = analyze_src("function y = f(x)\ny = x(3);\nend", "f", &[arg]);
        let y = a.function("f").unwrap().var_ty("y");
        assert_eq!(y.class, Class::Complex);
        assert!(y.shape.is_scalar());
    }

    #[test]
    fn indexed_assignment_joins_class() {
        let a = analyze_src(
            "function y = f(n)\ny = zeros(1, 4);\ny(2) = 1i;\nend",
            "f",
            &[Ty::double_scalar()],
        );
        assert_eq!(a.function("f").unwrap().var_ty("y").class, Class::Complex);
    }

    #[test]
    fn comparison_is_logical() {
        let a = analyze_src(
            "function y = f(x)\ny = x > 0;\nend",
            "f",
            &[Ty::new(Class::Double, Shape::row(Dim::Known(5)))],
        );
        let y = a.function("f").unwrap().var_ty("y");
        assert_eq!(y.class, Class::Logical);
        assert_eq!(y.shape, Shape::row(Dim::Known(5)));
    }

    #[test]
    fn script_analysis() {
        let (p, _) = parse("a = 1:10;\nb = sum(a);");
        let a = analyze_script(&p);
        let s = a.function(SCRIPT_FN).unwrap();
        assert_eq!(s.var_ty("a").shape, Shape::row(Dim::Known(10)));
        assert!(s.var_ty("b").shape.is_scalar());
    }

    #[test]
    fn range_length_from_constants() {
        let a = analyze_src("function y = f()\ny = 0:2:10;\nend", "f", &[]);
        assert_eq!(
            a.function("f").unwrap().var_ty("y").shape,
            Shape::row(Dim::Known(6))
        );
    }

    #[test]
    fn constant_folding_through_dims() {
        let a = analyze_src(
            "function y = f()\nn = 32;\ny = zeros(1, n / 2);\nend",
            "f",
            &[],
        );
        assert_eq!(
            a.function("f").unwrap().var_ty("y").shape,
            Shape::known(1, 16)
        );
    }

    #[test]
    fn transpose_shape() {
        let arg = Ty::new(Class::Double, Shape::known(1, 8));
        let a = analyze_src("function y = f(x)\ny = x';\nend", "f", &[arg]);
        assert_eq!(
            a.function("f").unwrap().var_ty("y").shape,
            Shape::known(8, 1)
        );
    }

    #[test]
    fn matmul_shape() {
        let a = Ty::new(Class::Double, Shape::known(4, 8));
        let b = Ty::new(Class::Double, Shape::known(8, 3));
        let an = analyze_src("function c = f(a, b)\nc = a * b;\nend", "f", &[a, b]);
        assert_eq!(
            an.function("f").unwrap().var_ty("c").shape,
            Shape::known(4, 3)
        );
    }

    #[test]
    fn matrix_literal_shape() {
        let a = analyze_src("function y = f()\ny = [1 2 3; 4 5 6];\nend", "f", &[]);
        assert_eq!(
            a.function("f").unwrap().var_ty("y").shape,
            Shape::known(2, 3)
        );
    }
}
