//! Straightforward Rust implementations of the six kernels.
//!
//! These anchor the MATLAB sources' correctness *independently* of the
//! interpreter: the test suite checks `interp(kernel.m) == rust_ref`,
//! so a bug shared by interpreter and compiler cannot hide.

use matic::CValue;

/// FIR filter: `y(k) = Σ_t h(t) x(k-t+1)`.
pub fn fir(x: &[f64], h: &[f64]) -> Vec<f64> {
    let n = x.len();
    let m = h.len();
    (0..n)
        .map(|k| {
            let hi = (k + 1).min(m);
            (0..hi).map(|t| h[t] * x[k - t]).sum()
        })
        .collect()
}

/// Direct-form IIR filter (`a[0]` normalizing).
pub fn iir(x: &[f64], b: &[f64], a: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut y = vec![0.0; n];
    for k in 0..n {
        let mut acc = 0.0;
        for (t, bt) in b.iter().enumerate() {
            if t <= k {
                acc += bt * x[k - t];
            }
        }
        for (t, at) in a.iter().enumerate().skip(1) {
            if t <= k {
                acc -= at * y[k - t];
            }
        }
        y[k] = acc / a[0];
    }
    y
}

/// Point-wise complex multiply of `(re, im)` pair slices.
pub fn cmult(x: &[(f64, f64)], w: &[(f64, f64)]) -> Vec<(f64, f64)> {
    x.iter()
        .zip(w)
        .map(|(&(ar, ai), &(br, bi))| (ar * br - ai * bi, ar * bi + ai * br))
        .collect()
}

/// Naive DFT (the FFT oracle): `X(k) = Σ_t x(t) e^{-2πi kt / n}`.
pub fn dft(x: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut re = 0.0;
            let mut im = 0.0;
            for (t, &(xr, xi)) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (s, c) = ang.sin_cos();
                re += xr * c - xi * s;
                im += xr * s + xi * c;
            }
            (re, im)
        })
        .collect()
}

/// Column-major matrix multiply: `c = a * b`, all `n×n`.
pub fn matmul(a: &[f64], b: &[f64], n: usize) -> Vec<f64> {
    let mut c = vec![0.0; n * n];
    for j in 0..n {
        for k in 0..n {
            let bkj = b[j * n + k];
            for i in 0..n {
                c[j * n + i] += a[k * n + i] * bkj;
            }
        }
    }
    c
}

/// Cross-correlation over `[-maxlag, maxlag]`:
/// `r(lag) = Σ_t x(t+lag) y(t)` (1-based MATLAB window semantics).
pub fn xcorr(x: &[f64], y: &[f64], maxlag: usize) -> Vec<f64> {
    let n = x.len() as i64;
    let ml = maxlag as i64;
    (-ml..=ml)
        .map(|lag| {
            let lo = 1.max(1 - lag);
            let hi = n.min(n - lag);
            (lo..=hi)
                .map(|t| x[(t + lag - 1) as usize] * y[(t - 1) as usize])
                .sum()
        })
        .collect()
}

/// Runs the Rust reference for benchmark `id` on harness inputs,
/// producing the expected primary output.
///
/// # Panics
///
/// Panics on unknown ids or malformed inputs — references are test-side
/// infrastructure.
pub fn run(id: &str, inputs: &[CValue]) -> CValue {
    match id {
        "fir" => CValue::row(&fir(&inputs[0].re, &inputs[1].re)),
        "iir" => CValue::row(&iir(&inputs[0].re, &inputs[1].re, &inputs[2].re)),
        "cmult" => {
            let pairs = |v: &CValue| -> Vec<(f64, f64)> {
                let im = v.im.clone().unwrap_or_else(|| vec![0.0; v.numel()]);
                v.re.iter().copied().zip(im).collect()
            };
            CValue::cx_row(&cmult(&pairs(&inputs[0]), &pairs(&inputs[1])))
        }
        "fft" => {
            let im = inputs[0]
                .im
                .clone()
                .unwrap_or_else(|| vec![0.0; inputs[0].numel()]);
            let x: Vec<(f64, f64)> = inputs[0].re.iter().copied().zip(im).collect();
            CValue::cx_row(&dft(&x))
        }
        "matmul" => {
            let n = inputs[0].rows;
            let c = matmul(&inputs[0].re, &inputs[1].re, n);
            CValue {
                rows: n,
                cols: n,
                re: c,
                im: None,
            }
        }
        "xcorr" => {
            let maxlag = inputs[2].re[0] as usize;
            CValue::row(&xcorr(&inputs[0].re, &inputs[1].re, maxlag))
        }
        other => panic!("unknown benchmark `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{benchmark, outputs_close, SUITE};

    #[test]
    fn fir_impulse_response_is_taps() {
        let mut x = vec![0.0; 8];
        x[0] = 1.0;
        let h = vec![3.0, 2.0, 1.0];
        let y = fir(&x, &h);
        assert_eq!(&y[..3], &[3.0, 2.0, 1.0]);
        assert!(y[3..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = vec![(1.0, 0.0); 8];
        let out = dft(&x);
        assert!((out[0].0 - 8.0).abs() < 1e-9);
        for &(re, im) in &out[1..] {
            assert!(re.abs() < 1e-9 && im.abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_identity() {
        let n = 3;
        let mut eye = vec![0.0; 9];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let a: Vec<f64> = (0..9).map(|v| v as f64).collect();
        assert_eq!(matmul(&a, &eye, n), a);
        assert_eq!(matmul(&eye, &a, n), a);
    }

    #[test]
    fn xcorr_peak_at_zero_lag_for_identical_signals() {
        let x = vec![1.0, -2.0, 3.0, -1.0];
        let r = xcorr(&x, &x, 2);
        let peak = r.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(peak, r[2]); // zero-lag is the middle
    }

    /// The load-bearing test: the MATLAB kernels (run on the interpreter)
    /// agree with the independent Rust references.
    #[test]
    fn matlab_kernels_match_rust_references() {
        for b in SUITE {
            let n = match b.id {
                "matmul" => 6,
                "fft" => 32,
                _ => 48,
            };
            let inputs = b.inputs(n, 99);
            let got = &b
                .reference_outputs(&inputs)
                .unwrap_or_else(|e| panic!("{}: interp failed: {e}", b.id))[0];
            let want = run(b.id, &inputs);
            outputs_close(got, &want, 1e-9).unwrap_or_else(|e| panic!("{} mismatch: {e}", b.id));
        }
    }

    #[test]
    fn fft_specifically_matches_dft_at_default_sizes() {
        let b = benchmark("fft").unwrap();
        for n in [2usize, 4, 8, 64, 128] {
            let inputs = b.inputs(n, 5);
            let got = &b.reference_outputs(&inputs).expect("interp ok")[0];
            let want = run("fft", &inputs);
            outputs_close(got, &want, 1e-9).unwrap_or_else(|e| panic!("fft n={n}: {e}"));
        }
    }
}
