//! The six DSP benchmark kernels, written in the MATLAB subset the
//! compiler accepts — the workload set of the paper's evaluation
//! ("six DSP benchmarks", abstract).

/// 64-tap FIR filter — multiply-accumulate over a sliding window.
pub const FIR: &str = r#"
function y = fir(x, h)
% FIR filter: y(k) = sum_t h(t) * x(k - t + 1)
n = length(x);
m = length(h);
y = zeros(1, n);
for k = 1:n
    acc = 0;
    hi = min(k, m);
    for t = 1:hi
        acc = acc + h(t) * x(k - t + 1);
    end
    y(k) = acc;
end
end
"#;

/// Direct-form IIR filter — a recurrence whose feedback loop cannot be
/// vectorized (the paper's low-speedup anchor).
pub const IIR: &str = r#"
function y = iir(x, b, a)
% Direct-form IIR: a(1)*y(k) = sum b(t) x(k-t+1) - sum a(t) y(k-t+1)
n = length(x);
nb = length(b);
na = length(a);
ga = -a;
y = zeros(1, n);
for k = 1:n
    acc = 0;
    hb = min(k, nb);
    for t = 1:hb
        acc = acc + b(t) * x(k - t + 1);
    end
    ha = min(k, na);
    for t = 2:ha
        acc = acc + ga(t) * y(k - t + 1);
    end
    y(k) = acc / a(1);
end
end
"#;

/// Complex vector multiply (mixer) — exercises the complex-arithmetic
/// custom instructions.
pub const CMULT: &str = r#"
function y = cmult(x, w)
% Point-wise complex mix: y = x .* w
y = x .* w;
end
"#;

/// Iterative radix-2 complex FFT, written in MATLAB's vectorized style:
/// each butterfly pass works on whole slices, which the compiler maps to
/// strided complex SIMD custom instructions.
pub const FFT: &str = r#"
function y = fft_r2(x)
% In-place iterative radix-2 decimation-in-time FFT; length(x) must be a
% power of two.
n = length(x);
y = x;
% Bit-reversal permutation.
j = 1;
for i = 1:n-1
    if i < j
        tmp = y(j);
        y(j) = y(i);
        y(i) = tmp;
    end
    k = n / 2;
    while k < j
        j = j - k;
        k = k / 2;
    end
    j = j + k;
end
% Twiddle table, computed once: wtab(k) = exp(-2*pi*1i*(k-1)/n).
halfn = n / 2;
wtab = exp(1i * ((0:halfn-1) * (-2 * pi / n)));
% Butterfly passes over whole slices (vectorized MATLAB style).
len = 2;
while len <= n
    half = len / 2;
    stride = n / len;
    w = wtab(1:stride:halfn);
    s = 1;
    while s <= n
        u = y(s:s+half-1);
        v = y(s+half:s+len-1) .* w;
        y(s:s+half-1) = u + v;
        y(s+half:s+len-1) = u - v;
        s = s + len;
    end
    len = len * 2;
end
end
"#;

/// Matrix multiply, written in MATLAB's vectorized style.
pub const MATMUL: &str = r#"
function c = matmul(a, b)
% c = a * b via row-by-column dot products.
[n, m] = size(a);
[m2, p] = size(b);
c = zeros(n, p);
for i = 1:n
    ra = a(i, :);
    for j = 1:p
        cb = b(:, j);
        c(i, j) = sum(ra .* cb');
    end
end
end
"#;

/// Cross-correlation over a lag window.
pub const XCORR: &str = r#"
function r = xcorr_k(x, y, maxlag)
% r(lag + maxlag + 1) = sum_t x(t + lag) * y(t)
n = length(x);
r = zeros(1, 2 * maxlag + 1);
for lag = -maxlag:maxlag
    acc = 0;
    lo = max(1, 1 - lag);
    hi = min(n, n - lag);
    for t = lo:hi
        acc = acc + x(t + lag) * y(t);
    end
    r(lag + maxlag + 1) = acc;
end
end
"#;
