//! The six DSP benchmark kernels, written in the MATLAB subset the
//! compiler accepts — the workload set of the paper's evaluation
//! ("six DSP benchmarks", abstract).
//!
//! The sources live as plain `.m` files under `benchmarks/` at the repo
//! root, so the `matic` CLI (and the CI profiling job) can compile the
//! exact same programs the Rust suite embeds.

/// 64-tap FIR filter — multiply-accumulate over a sliding window.
pub const FIR: &str = include_str!("../../../benchmarks/fir.m");

/// Direct-form IIR filter — a recurrence whose feedback loop cannot be
/// vectorized (the paper's low-speedup anchor).
pub const IIR: &str = include_str!("../../../benchmarks/iir.m");

/// Complex vector multiply (mixer) — exercises the complex-arithmetic
/// custom instructions.
pub const CMULT: &str = include_str!("../../../benchmarks/cmult.m");

/// Iterative radix-2 complex FFT, written in MATLAB's vectorized style:
/// each butterfly pass works on whole slices, which the compiler maps to
/// strided complex SIMD custom instructions.
pub const FFT: &str = include_str!("../../../benchmarks/fft.m");

/// Matrix multiply, written in MATLAB's vectorized style.
pub const MATMUL: &str = include_str!("../../../benchmarks/matmul.m");

/// Cross-correlation over a lag window.
pub const XCORR: &str = include_str!("../../../benchmarks/xcorr.m");
