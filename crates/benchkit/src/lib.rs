//! # matic-benchkit
//!
//! The six DSP benchmarks of the DATE'16 evaluation as embedded MATLAB
//! sources, plus deterministic stimulus generation, conversions between
//! the value types of the interpreter / C harness / ASIP simulator, and
//! straightforward Rust reference implementations that anchor kernel
//! correctness independently of the interpreter.
//!
//! # Examples
//!
//! ```
//! use matic_benchkit::benchmark;
//!
//! let fir = benchmark("fir").expect("known benchmark");
//! assert_eq!(fir.entry, "fir");
//! let inputs = fir.inputs(64, 7);
//! assert_eq!(inputs.len(), 2);
//! ```

pub mod kernels;
pub mod reference;

use matic::{arg, CValue, Cx, Interpreter, Matrix, SimVal, Ty, Value};

/// One benchmark of the evaluation suite.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// Short identifier (`fir`, `iir`, …).
    pub id: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// What the kernel exercises.
    pub description: &'static str,
    /// MATLAB source.
    pub source: &'static str,
    /// Entry function name.
    pub entry: &'static str,
    /// Default problem size (`n`).
    pub default_n: usize,
}

/// The benchmark suite, in the order reported by the paper tables.
pub const SUITE: &[Benchmark] = &[
    Benchmark {
        id: "fir",
        name: "FIR filter (64 taps)",
        description: "sliding-window multiply-accumulate; SIMD MAC",
        source: kernels::FIR,
        entry: "fir",
        default_n: 1024,
    },
    Benchmark {
        id: "iir",
        name: "IIR filter (direct form)",
        description: "feedback recurrence; mostly serial (low-speedup anchor)",
        source: kernels::IIR,
        entry: "iir",
        default_n: 1024,
    },
    Benchmark {
        id: "cmult",
        name: "complex vector multiply",
        description: "point-wise complex mix; complex-arithmetic instructions",
        source: kernels::CMULT,
        entry: "cmult",
        default_n: 1024,
    },
    Benchmark {
        id: "fft",
        name: "radix-2 complex FFT",
        description: "butterflies; complex multiplies and strided access",
        source: kernels::FFT,
        entry: "fft_r2",
        default_n: 1024,
    },
    Benchmark {
        id: "matmul",
        name: "matrix multiply (32x32)",
        description: "row-column dot products; SIMD MAC over 2-D views",
        source: kernels::MATMUL,
        entry: "matmul",
        default_n: 32,
    },
    Benchmark {
        id: "xcorr",
        name: "cross-correlation",
        description: "lagged multiply-accumulate windows",
        source: kernels::XCORR,
        entry: "xcorr_k",
        default_n: 512,
    },
];

/// Looks a benchmark up by id.
pub fn benchmark(id: &str) -> Option<&'static Benchmark> {
    SUITE.iter().find(|b| b.id == id)
}

/// FIR tap count used by the suite.
pub const FIR_TAPS: usize = 64;
/// Cross-correlation lag window used by the suite.
pub const XCORR_MAXLAG: usize = 64;

impl Benchmark {
    /// Entry-signature argument types for problem size `n`.
    pub fn arg_types(&self, n: usize) -> Vec<Ty> {
        match self.id {
            "fir" => vec![arg::vector(n), arg::vector(FIR_TAPS.min(n.max(1)))],
            "iir" => vec![arg::vector(n), arg::vector(3), arg::vector(3)],
            "cmult" => vec![arg::cx_vector(n), arg::cx_vector(n)],
            "fft" => vec![arg::cx_vector(n)],
            "matmul" => vec![arg::matrix(n, n), arg::matrix(n, n)],
            "xcorr" => vec![arg::vector(n), arg::vector(n), arg::scalar()],
            _ => unreachable!("unknown benchmark id"),
        }
    }

    /// Deterministic pseudo-random inputs for problem size `n`.
    pub fn inputs(&self, n: usize, seed: u64) -> Vec<CValue> {
        let mut rng = Lcg::new(seed ^ 0xB5AD4ECEDA1CE2A9);
        match self.id {
            "fir" => vec![rng.real_vec(n), rng.real_vec(FIR_TAPS.min(n.max(1)))],
            "iir" => {
                let x = rng.real_vec(n);
                // A stable low-pass biquad.
                let b = CValue::row(&[0.2929, 0.5858, 0.2929]);
                let a = CValue::row(&[1.0, -0.0, 0.1716]);
                vec![x, b, a]
            }
            "cmult" => vec![rng.cx_vec(n), rng.cx_vec(n)],
            "fft" => vec![rng.cx_vec(n)],
            "matmul" => vec![rng.real_mat(n, n), rng.real_mat(n, n)],
            "xcorr" => vec![
                rng.real_vec(n),
                rng.real_vec(n),
                CValue::scalar(XCORR_MAXLAG.min(n.saturating_sub(1)).max(1) as f64),
            ],
            _ => unreachable!("unknown benchmark id"),
        }
    }

    /// The lag-window parameter effective at size `n` (xcorr only).
    pub fn maxlag(&self, n: usize) -> usize {
        XCORR_MAXLAG.min(n.saturating_sub(1)).max(1)
    }

    /// Runs the kernel on the reference interpreter, returning outputs.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors as strings.
    pub fn reference_outputs(&self, inputs: &[CValue]) -> Result<Vec<CValue>, String> {
        let mut interp = Interpreter::from_source(self.source).map_err(|e| e.to_string())?;
        let vals: Vec<Value> = inputs.iter().map(to_interp).collect();
        let outs = interp
            .call(self.entry, vals, 1)
            .map_err(|e| e.to_string())?;
        outs.iter().map(from_interp).collect()
    }
}

/// Deterministic xorshift generator for stimulus (decoupled from `rand`
/// so inputs stay stable across dependency upgrades).
struct Lcg {
    state: u64,
}

impl Lcg {
    fn new(seed: u64) -> Lcg {
        Lcg { state: seed.max(1) }
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        // Uniform in [-1, 1).
        ((x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    fn real_vec(&mut self, n: usize) -> CValue {
        CValue::row(&(0..n).map(|_| self.next_f64()).collect::<Vec<_>>())
    }

    fn cx_vec(&mut self, n: usize) -> CValue {
        CValue::cx_row(
            &(0..n)
                .map(|_| (self.next_f64(), self.next_f64()))
                .collect::<Vec<_>>(),
        )
    }

    fn real_mat(&mut self, r: usize, c: usize) -> CValue {
        CValue {
            rows: r,
            cols: c,
            re: (0..r * c).map(|_| self.next_f64()).collect(),
            im: None,
        }
    }
}

// ---- value conversions ------------------------------------------------------

/// Converts a harness value to an ASIP simulator value.
pub fn to_sim(v: &CValue) -> SimVal {
    if v.is_scalar() {
        match &v.im {
            Some(im) => SimVal::Scalar(Cx::new(v.re[0], im[0])),
            None => SimVal::scalar(v.re[0]),
        }
    } else {
        let data: Vec<Cx> = match &v.im {
            Some(im) => v.re.iter().zip(im).map(|(r, i)| Cx::new(*r, *i)).collect(),
            None => v.re.iter().map(|r| Cx::new(*r, 0.0)).collect(),
        };
        SimVal::Arr(Matrix::new(v.rows, v.cols, data))
    }
}

/// Converts a simulator value back to a harness value.
pub fn sim_to_cvalue(v: &SimVal) -> CValue {
    match v {
        SimVal::Scalar(z) => {
            if z.im == 0.0 {
                CValue::scalar(z.re)
            } else {
                CValue::cx_scalar(z.re, z.im)
            }
        }
        SimVal::Arr(m) => {
            let complex = !m.is_real();
            CValue {
                rows: m.rows(),
                cols: m.cols(),
                re: m.data().iter().map(|z| z.re).collect(),
                im: if complex {
                    Some(m.data().iter().map(|z| z.im).collect())
                } else {
                    None
                },
            }
        }
    }
}

/// Converts a harness value to an interpreter value.
pub fn to_interp(v: &CValue) -> Value {
    let data: Vec<Cx> = match &v.im {
        Some(im) => v.re.iter().zip(im).map(|(r, i)| Cx::new(*r, *i)).collect(),
        None => v.re.iter().map(|r| Cx::new(*r, 0.0)).collect(),
    };
    Value::Num(Matrix::new(v.rows, v.cols, data))
}

/// Converts an interpreter value back to a harness value.
///
/// # Errors
///
/// Fails for non-numeric values (strings, handles).
pub fn from_interp(v: &Value) -> Result<CValue, String> {
    let m = v.as_matrix()?;
    let complex = !m.is_real();
    Ok(CValue {
        rows: m.rows(),
        cols: m.cols(),
        re: m.data().iter().map(|z| z.re).collect(),
        im: if complex {
            Some(m.data().iter().map(|z| z.im).collect())
        } else {
            None
        },
    })
}

/// Compares two harness values within `tol`, returning the worst
/// difference relative to the magnitude of `expected`.
pub fn outputs_close(actual: &CValue, expected: &CValue, tol: f64) -> Result<(), String> {
    let Some(diff) = actual.max_abs_diff(expected) else {
        return Err(format!(
            "shape mismatch: {}x{} vs {}x{}",
            actual.rows, actual.cols, expected.rows, expected.cols
        ));
    };
    let scale = expected.re.iter().map(|v| v.abs()).fold(1.0_f64, f64::max);
    if diff > tol * scale {
        return Err(format!("max abs diff {diff} exceeds {tol} (scale {scale})"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete() {
        assert_eq!(SUITE.len(), 6);
        for b in SUITE {
            assert!(benchmark(b.id).is_some());
            assert_eq!(
                b.arg_types(b.default_n).len(),
                b.inputs(b.default_n, 1).len()
            );
        }
    }

    #[test]
    fn inputs_are_deterministic() {
        let a = benchmark("fir").unwrap().inputs(64, 42);
        let b = benchmark("fir").unwrap().inputs(64, 42);
        assert_eq!(a, b);
        let c = benchmark("fir").unwrap().inputs(64, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn conversions_round_trip() {
        let v = CValue::cx_row(&[(1.0, 2.0), (3.0, -4.0)]);
        let sim = to_sim(&v);
        let back = sim_to_cvalue(&sim);
        assert_eq!(v, back);
        let iv = to_interp(&v);
        let back2 = from_interp(&iv).unwrap();
        assert_eq!(v, back2);
    }

    #[test]
    fn all_benchmarks_run_on_interpreter() {
        for b in SUITE {
            let n = match b.id {
                "matmul" => 4,
                "fft" => 16,
                _ => 32,
            };
            let inputs = b.inputs(n, 7);
            let outs = b
                .reference_outputs(&inputs)
                .unwrap_or_else(|e| panic!("{} failed: {e}", b.id));
            assert_eq!(outs.len(), 1, "{}", b.id);
            assert!(outs[0].numel() > 0, "{}", b.id);
        }
    }
}
