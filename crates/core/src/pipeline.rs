//! The compiler driver: parse → analyze → lower → optimize → vectorize →
//! emit, as one configurable pipeline.

use matic_codegen::{CBackend, CModule, CodegenOptions};
use matic_frontend::diag::Diagnostic;
use matic_frontend::Program;
use matic_isa::IsaSpec;
use matic_mir::MirProgram;
use matic_sema::{Analysis, Ty};
use matic_vectorize::VectorizeReport;
use std::fmt;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Any failure along the compilation pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexing/parsing failed.
    Parse(Diagnostic),
    /// Semantic analysis failed.
    Sema(Diagnostic),
    /// Lowering rejected a construct.
    Lower(Diagnostic),
    /// The C backend rejected a construct.
    Codegen(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(d) => write!(f, "parse: {d}"),
            CompileError::Sema(d) => write!(f, "sema: {d}"),
            CompileError::Lower(d) => write!(f, "lower: {d}"),
            CompileError::Codegen(m) => write!(f, "codegen: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Optimization configuration for one compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptLevel {
    /// Run the scalar optimization pipeline (const fold, copy prop, DCE).
    pub scalar_opts: bool,
    /// Inline small leaf functions (exposes cross-call idioms).
    pub inline: bool,
    /// Run idiom recognition / vectorization.
    pub vectorize: bool,
    /// Allow the backend to emit target intrinsics.
    pub intrinsics: bool,
}

impl OptLevel {
    /// Everything on — the paper's proposed compiler.
    pub fn full() -> OptLevel {
        OptLevel {
            scalar_opts: true,
            inline: true,
            vectorize: true,
            intrinsics: true,
        }
    }

    /// MATLAB-Coder-like baseline: straightforward scalar C.
    pub fn baseline() -> OptLevel {
        OptLevel {
            scalar_opts: true,
            inline: false,
            vectorize: false,
            intrinsics: false,
        }
    }
}

/// Wall-clock timing of one compiler pass, recorded during
/// [`Compiler::compile`] and surfaced by `matic --trace-passes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassTiming {
    /// Pass name (`parse`, `sema`, `lower`, …).
    pub name: &'static str,
    /// Time spent in the pass.
    pub duration: Duration,
}

/// A fluent front door to the compiler.
///
/// # Examples
///
/// ```
/// use matic::{Compiler, arg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "function s = dotp(a, b)\ns = sum(a .* b);\nend";
/// let compiled = Compiler::new()
///     .target(matic::IsaSpec::dsp16())
///     .compile(src, "dotp", &[arg::vector(64), arg::vector(64)])?;
/// assert!(compiled.c.source.contains("__asip_vmac"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Compiler {
    spec: Arc<IsaSpec>,
    opt: OptLevel,
}

impl Default for Compiler {
    fn default() -> Self {
        Compiler::new()
    }
}

impl Compiler {
    /// A compiler for the paper's `dsp16` ASIP at full optimization.
    pub fn new() -> Compiler {
        Compiler {
            spec: Arc::new(IsaSpec::dsp16()),
            opt: OptLevel::full(),
        }
    }

    /// Selects the target ISA description.
    pub fn target(mut self, spec: IsaSpec) -> Compiler {
        self.spec = Arc::new(spec);
        self
    }

    /// Selects the optimization level.
    pub fn opt_level(mut self, opt: OptLevel) -> Compiler {
        self.opt = opt;
        self
    }

    /// The configured target.
    pub fn spec(&self) -> &IsaSpec {
        &self.spec
    }

    /// Compiles `src`, treating `entry` called with `arg_types` as the
    /// program entry point.
    ///
    /// # Errors
    ///
    /// Returns the first error from any stage.
    pub fn compile(
        &self,
        src: &str,
        entry: &str,
        arg_types: &[Ty],
    ) -> Result<Compiled, CompileError> {
        let t0 = Instant::now();
        let (program, diags) = matic_frontend::parse(src);
        let parse_time = PassTiming {
            name: "parse",
            duration: t0.elapsed(),
        };
        if let Some(d) = diags.first_error() {
            return Err(CompileError::Parse(d.clone()));
        }
        self.compile_timed(program, entry, arg_types, vec![parse_time])
    }

    /// Compiles an already-parsed program.
    ///
    /// # Errors
    ///
    /// Returns the first error from any stage.
    pub fn compile_program(
        &self,
        program: Program,
        entry: &str,
        arg_types: &[Ty],
    ) -> Result<Compiled, CompileError> {
        self.compile_timed(program, entry, arg_types, Vec::new())
    }

    fn compile_timed(
        &self,
        program: Program,
        entry: &str,
        arg_types: &[Ty],
        mut timings: Vec<PassTiming>,
    ) -> Result<Compiled, CompileError> {
        let mut time = |name: &'static str, t0: Instant| {
            timings.push(PassTiming {
                name,
                duration: t0.elapsed(),
            });
        };
        let t0 = Instant::now();
        let analysis = matic_sema::analyze(&program, entry, arg_types);
        time("sema", t0);
        if let Some(d) = analysis.diags.first_error() {
            return Err(CompileError::Sema(d.clone()));
        }
        let t0 = Instant::now();
        let (mut mir, diags) = matic_mir::lower_program(&program, &analysis);
        time("lower", t0);
        if let Some(d) = diags.first_error() {
            return Err(CompileError::Lower(d.clone()));
        }
        if self.opt.scalar_opts {
            let t0 = Instant::now();
            matic_mir::optimize_program(&mut mir);
            time("optimize", t0);
        }
        if self.opt.inline {
            let t0 = Instant::now();
            matic_mir::inline_program(&mut mir, matic_mir::DEFAULT_INLINE_LIMIT);
            if self.opt.scalar_opts {
                matic_mir::optimize_program(&mut mir);
            }
            time("inline", t0);
        }
        let report = if self.opt.vectorize {
            let t0 = Instant::now();
            let report = matic_vectorize::vectorize_program(&mut mir);
            time("vectorize", t0);
            report
        } else {
            VectorizeReport::default()
        };
        let backend = CBackend::new(
            (*self.spec).clone(),
            CodegenOptions {
                use_intrinsics: self.opt.intrinsics,
            },
        );
        let t0 = Instant::now();
        let c = backend
            .generate(&mir)
            .map_err(|e| CompileError::Codegen(e.to_string()))?;
        time("codegen", t0);
        Ok(Compiled {
            entry: entry.to_string(),
            ast: program,
            analysis,
            mir,
            report,
            c,
            spec: Arc::clone(&self.spec),
            opt: self.opt,
            timings,
            decoded: OnceLock::new(),
            native: OnceLock::new(),
        })
    }
}

/// Everything a compilation produces, kept around so callers can inspect
/// intermediate results (C-INTERMEDIATE).
#[derive(Debug, Clone)]
pub struct Compiled {
    /// Entry function name.
    pub entry: String,
    /// The parsed source.
    pub ast: Program,
    /// Sema results (types per function).
    pub analysis: Analysis,
    /// The final MIR (post-optimization/vectorization).
    pub mir: MirProgram,
    /// What the vectorizer recognized.
    pub report: VectorizeReport,
    /// The generated C module.
    pub c: CModule,
    /// The ISA the module was generated for, shared with every simulator
    /// spawned from this compilation.
    pub spec: Arc<IsaSpec>,
    /// The optimization level the module was compiled at.
    pub opt: OptLevel,
    /// Wall-clock time per pass (empty when built from an already-parsed
    /// program without timings).
    pub timings: Vec<PassTiming>,
    /// Lazily-built pre-decoded instruction streams for the simulator;
    /// filled on the first [`Compiled::simulator`]/[`Compiled::simulate`]
    /// call and shared by all subsequent ones.
    decoded: OnceLock<Arc<matic_asip::DecodedProgram>>,
    /// Lazily-fused superinstruction program for the native engine;
    /// built at most once per `Compiled` and shared by every simulator
    /// spawned from it (the fusion, like the decode, is
    /// target-independent).
    native: OnceLock<Arc<matic_asip::NativeProgram>>,
}

impl Compiled {
    /// Runs the compiled program on the cycle-level virtual ASIP with the
    /// same target and intrinsic policy the C module was generated for.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn simulate(
        &self,
        inputs: Vec<matic_asip::SimVal>,
    ) -> Result<matic_asip::SimOutcome, matic_asip::SimError> {
        self.simulator().run(inputs)
    }

    /// A reusable simulator for this compilation: the ISA spec is shared
    /// (not cloned) and the MIR is decoded at most once per `Compiled`,
    /// so repeated [`matic_asip::Simulator::run`] calls pay only for
    /// execution.
    pub fn simulator(&self) -> matic_asip::Simulator<'_> {
        self.simulator_for(Arc::clone(&self.spec))
    }

    /// A simulator for this compilation retargeted to an arbitrary ISA
    /// `spec`, still sharing the once-per-compilation decoded program.
    ///
    /// The MIR (and therefore the decoded instruction stream) is
    /// target-independent — all target dependence lives in the machine's
    /// cost table and capability gates — so one compilation can be
    /// fanned out across many candidate ISAs. This is the primitive the
    /// `matic-explore` design-space search is built on: compile once,
    /// simulate against hundreds of [`IsaSpec`] variants in parallel.
    pub fn simulator_for(&self, spec: Arc<IsaSpec>) -> matic_asip::Simulator<'_> {
        let mut machine = matic_asip::AsipMachine::from_shared(spec);
        if !self.opt.intrinsics {
            // A baseline compilation models a toolchain that is blind to
            // the custom instructions; the machine must not charge them.
            machine = machine.without_intrinsics();
        }
        let decoded = Arc::clone(
            self.decoded
                .get_or_init(|| Arc::new(matic_asip::decode_program(&self.mir))),
        );
        let native = Arc::clone(
            self.native
                .get_or_init(|| Arc::new(matic_asip::fuse_program(&self.mir, decoded.as_ref()))),
        );
        machine
            .load_decoded(&self.mir, decoded, &self.entry)
            .with_native(native)
    }

    /// The entry function's MIR.
    ///
    /// # Panics
    ///
    /// Panics if the entry vanished from the MIR (compiler invariant).
    pub fn entry_mir(&self) -> &matic_mir::MirFunction {
        self.mir
            .function(&self.entry)
            .expect("entry function exists in MIR")
    }

    /// A human-readable MIR dump.
    pub fn mir_dump(&self) -> String {
        matic_mir::print_program(&self.mir)
    }
}

/// Convenience constructors for entry-point argument types.
pub mod arg {
    use matic_sema::{Class, Dim, Shape, Ty};

    /// A real scalar argument.
    pub fn scalar() -> Ty {
        Ty::double_scalar()
    }

    /// A real 1×n row vector argument.
    pub fn vector(n: usize) -> Ty {
        Ty::new(Class::Double, Shape::row(Dim::Known(n)))
    }

    /// A complex 1×n row vector argument.
    pub fn cx_vector(n: usize) -> Ty {
        Ty::new(Class::Complex, Shape::row(Dim::Known(n)))
    }

    /// A complex scalar argument.
    pub fn cx_scalar() -> Ty {
        Ty::new(Class::Complex, Shape::scalar())
    }

    /// A real r×c matrix argument.
    pub fn matrix(r: usize, c: usize) -> Ty {
        Ty::new(Class::Double, Shape::known(r, c))
    }

    /// A real vector of runtime-determined length.
    pub fn vector_dyn() -> Ty {
        Ty::new(Class::Double, Shape::row(Dim::Unknown))
    }

    /// A complex vector of runtime-determined length.
    pub fn cx_vector_dyn() -> Ty {
        Ty::new(Class::Complex, Shape::row(Dim::Unknown))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_produces_intrinsics() {
        let src = "function s = dotp(a, b)\ns = sum(a .* b);\nend";
        let out = Compiler::new()
            .compile(src, "dotp", &[arg::vector(64), arg::vector(64)])
            .expect("compile ok");
        assert!(out.c.source.contains("__asip_vmac"));
        assert_eq!(out.report.fuse.macs_fused, 1);
    }

    #[test]
    fn baseline_pipeline_is_scalar() {
        let src = "function s = dotp(a, b)\ns = sum(a .* b);\nend";
        let out = Compiler::new()
            .opt_level(OptLevel::baseline())
            .compile(src, "dotp", &[arg::vector(64), arg::vector(64)])
            .expect("compile ok");
        assert!(!out.c.source.contains("__asip_"));
        assert_eq!(out.report.total_ops(), 0);
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = Compiler::new().compile("x = ;", "f", &[]).unwrap_err();
        assert!(matches!(err, CompileError::Parse(_)));
    }

    #[test]
    fn sema_errors_are_reported() {
        let err = Compiler::new()
            .compile("function y = f()\ny = undefined_thing;\nend", "f", &[])
            .unwrap_err();
        assert!(matches!(err, CompileError::Sema(_)));
    }

    #[test]
    fn mir_dump_is_accessible() {
        let out = Compiler::new()
            .compile("function y = f(x)\ny = 2 * x;\nend", "f", &[arg::scalar()])
            .expect("compile ok");
        assert!(out.mir_dump().contains("func @f"));
    }

    #[test]
    fn compiled_is_shareable_across_threads() {
        // The design-space explorer fans one `Compiled` out across a
        // thread pool; everything it holds must be Sync (the Rc-backed
        // simulation *values* are deliberately not, and stay per-thread).
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Compiled>();
    }

    #[test]
    fn simulator_for_matches_standalone_compilation() {
        // Retargeting an existing compilation must charge exactly the
        // cycles a from-scratch compilation for that target charges: the
        // decoded program is target-independent.
        let src = "function s = dotp(a, b)\ns = sum(a .* b);\nend";
        let args = [arg::vector(64), arg::vector(64)];
        let inputs = || {
            vec![
                matic_asip::SimVal::row(&(0..64).map(|i| i as f64).collect::<Vec<_>>()),
                matic_asip::SimVal::row(&[0.5; 64]),
            ]
        };
        let compiled = Compiler::new().compile(src, "dotp", &args).expect("ok");
        for spec in [
            IsaSpec::scalar_baseline(),
            IsaSpec::with_width(4),
            IsaSpec::with_features(matic_isa::Features {
                simd: false,
                complex: true,
                mac: true,
            }),
        ] {
            let retargeted = compiled
                .simulator_for(Arc::new(spec.clone()))
                .run(inputs())
                .expect("retargeted sim ok");
            let standalone = Compiler::new()
                .target(spec.clone())
                .compile(src, "dotp", &args)
                .expect("ok")
                .simulate(inputs())
                .expect("standalone sim ok");
            assert_eq!(
                retargeted.cycles.total, standalone.cycles.total,
                "{}: retargeted simulation must bit-match",
                spec.name
            );
            assert_eq!(retargeted.outputs, standalone.outputs, "{}", spec.name);
        }
    }

    #[test]
    fn retargeting_changes_output() {
        let src = "function y = scale(a, k)\ny = k .* a;\nend";
        let wide = Compiler::new()
            .target(IsaSpec::dsp16())
            .compile(src, "scale", &[arg::vector(32), arg::scalar()])
            .expect("compile ok");
        let scalar = Compiler::new()
            .target(IsaSpec::scalar_baseline())
            .compile(src, "scale", &[arg::vector(32), arg::scalar()])
            .expect("compile ok");
        assert!(wide.c.source.contains("__asip_vmul"));
        assert!(!scalar.c.source.contains("__asip_vmul"));
    }
}
