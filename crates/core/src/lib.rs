//! # matic
//!
//! A retargetable MATLAB-to-C compiler that exploits ASIP custom
//! instructions (SIMD, complex arithmetic, multiply-accumulate) — an
//! open-source reproduction of *"Matlab to C Compilation Targeting
//! Application Specific Instruction Set Processors"* (DATE 2016).
//!
//! The crate is a facade over the pipeline crates:
//! `matic-frontend` (parse) → `matic-sema` (types/shapes) → `matic-mir`
//! (IR + scalar opts) → `matic-vectorize` (idiom recognition) →
//! `matic-codegen` (ANSI C with intrinsics). `matic-interp` is the
//! reference interpreter used as the numerical oracle and `matic-asip`
//! the cycle-level virtual ASIP used for the paper's evaluation.
//!
//! # Examples
//!
//! ```
//! use matic::{arg, Compiler, IsaSpec, OptLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "function y = gain(x, k)\ny = k .* x;\nend";
//! let args = [arg::vector(256), arg::scalar()];
//!
//! // The proposed compiler: vectorizes and emits custom-instruction
//! // intrinsics for the dsp16 ASIP.
//! let optimized = Compiler::new().compile(src, "gain", &args)?;
//! assert!(optimized.c.source.contains("__asip_vmul"));
//!
//! // The MATLAB-Coder-like baseline emits plain scalar loops.
//! let baseline = Compiler::new()
//!     .opt_level(OptLevel::baseline())
//!     .compile(src, "gain", &args)?;
//! assert!(!baseline.c.source.contains("__asip_"));
//! # let _ = IsaSpec::dsp16();
//! # Ok(())
//! # }
//! ```

pub mod pipeline;

pub use matic_asip::{
    AsipMachine, CycleReport, Engine, NativeProgram, Profile, SimError, SimErrorKind, SimOutcome,
    SimVal, Simulator, SpanCounters, PROFILE_SCHEMA,
};
pub use matic_codegen::{CModule, CValue, CodegenOptions, Harness};
pub use matic_frontend::{parse, Program, SourceMap, Span};
pub use matic_interp::{Cx, Interpreter, Matrix, RuntimeError, Value};
pub use matic_isa::{CostModel, Features, IsaSpec, OpClass};
pub use matic_sema::{Class, Dim, Shape, Ty};
pub use matic_vectorize::{LoopDecision, VectorizeReport};
pub use pipeline::{arg, CompileError, Compiled, Compiler, OptLevel, PassTiming};
