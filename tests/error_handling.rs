//! Error-path integration tests: the pipeline must fail loudly and
//! precisely, never emit garbage C or garbage cycle counts.

use matic::{arg, CompileError, Compiler, SimVal};

#[test]
fn parse_errors_carry_positions() {
    let err = Compiler::new()
        .compile("function y = f(x)\ny = x +;\nend", "f", &[arg::scalar()])
        .unwrap_err();
    match err {
        CompileError::Parse(d) => {
            assert!(d.message.contains("expected expression"), "{d}");
        }
        other => panic!("expected parse error, got {other}"),
    }
}

#[test]
fn undefined_names_are_sema_errors() {
    let err = Compiler::new()
        .compile(
            "function y = f(x)\ny = x + missing_thing;\nend",
            "f",
            &[arg::scalar()],
        )
        .unwrap_err();
    match err {
        CompileError::Sema(d) => assert!(d.message.contains("missing_thing")),
        other => panic!("expected sema error, got {other}"),
    }
}

#[test]
fn missing_entry_function_is_reported() {
    let err = Compiler::new()
        .compile("function y = f(x)\ny = x;\nend", "nope", &[arg::scalar()])
        .unwrap_err();
    match err {
        CompileError::Sema(d) => assert!(d.message.contains("nope")),
        other => panic!("expected sema error, got {other}"),
    }
}

#[test]
fn function_handles_are_rejected_for_compilation() {
    let err = Compiler::new()
        .compile(
            "function y = f(x)\ng = @(t) t + 1;\ny = g(x);\nend",
            "f",
            &[arg::scalar()],
        )
        .unwrap_err();
    match err {
        CompileError::Lower(d) => {
            assert!(d.message.contains("function handles"), "{d}");
        }
        other => panic!("expected lower error, got {other}"),
    }
    // …but the same program runs fine on the interpreter.
    let mut interp =
        matic::Interpreter::from_source("function y = f(x)\ng = @(t) t + 1;\ny = g(x);\nend")
            .expect("parses");
    let out = interp
        .call("f", vec![matic::Value::scalar(4.0)], 1)
        .expect("interpreter supports handles");
    assert_eq!(out[0].as_matrix().unwrap().as_real_scalar().unwrap(), 5.0);
}

#[test]
fn arity_mismatch_at_simulation_time() {
    let compiled = Compiler::new()
        .compile(
            "function y = f(a, b)\ny = a + b;\nend",
            "f",
            &[arg::scalar(), arg::scalar()],
        )
        .expect("compiles");
    let err = compiled.simulate(vec![SimVal::scalar(1.0)]).unwrap_err();
    assert!(err.message.contains("expects 2 inputs"), "{err}");
}

#[test]
fn out_of_bounds_reads_are_trapped_by_the_simulator() {
    // Compiled code has C semantics (no growth); the simulator traps what
    // C would silently corrupt.
    let compiled = Compiler::new()
        .compile(
            "function y = f(x, i)\ny = x(i);\nend",
            "f",
            &[arg::vector(4), arg::scalar()],
        )
        .expect("compiles");
    let err = compiled
        .simulate(vec![
            SimVal::row(&[1.0, 2.0, 3.0, 4.0]),
            SimVal::scalar(9.0),
        ])
        .unwrap_err();
    assert!(err.message.contains("out of bounds"), "{err}");
}

#[test]
fn out_of_bounds_stores_are_trapped_too() {
    let compiled = Compiler::new()
        .compile(
            "function y = f(i)\ny = zeros(1, 4);\ny(i) = 1;\nend",
            "f",
            &[arg::scalar()],
        )
        .expect("compiles");
    let err = compiled.simulate(vec![SimVal::scalar(99.0)]).unwrap_err();
    assert!(err.message.contains("out of bounds"), "{err}");
}

#[test]
fn runtime_error_builtin_aborts_simulation() {
    let compiled = Compiler::new()
        .compile(
            "function y = f(x)\nif x < 0\n error('negative input');\nend\ny = sqrt(x);\nend",
            "f",
            &[arg::scalar()],
        )
        .expect("compiles");
    assert!(compiled.simulate(vec![SimVal::scalar(-1.0)]).is_err());
    let ok = compiled
        .simulate(vec![SimVal::scalar(9.0)])
        .expect("positive input fine");
    assert_eq!(ok.outputs[0].as_cx().unwrap().re, 3.0);
}

#[test]
fn dimension_mismatch_is_a_runtime_error_everywhere() {
    let src = "function y = f(a, b)\ny = a + b;\nend";
    // Interpreter.
    let mut interp = matic::Interpreter::from_source(src).expect("parses");
    let err = interp
        .call(
            "f",
            vec![
                matic_benchkit::to_interp(&matic::CValue::row(&[1.0, 2.0])),
                matic_benchkit::to_interp(&matic::CValue::row(&[1.0, 2.0, 3.0])),
            ],
            1,
        )
        .unwrap_err();
    assert!(err.message.contains("dimensions"));
    // Simulator (dynamic-size signature so the mismatch survives sema).
    let compiled = Compiler::new()
        .compile(src, "f", &[arg::vector_dyn(), arg::vector_dyn()])
        .expect("compiles");
    let err = compiled
        .simulate(vec![
            SimVal::row(&[1.0, 2.0]),
            SimVal::row(&[1.0, 2.0, 3.0]),
        ])
        .unwrap_err();
    assert!(err.message.contains("dimensions"), "{err}");
}

#[test]
fn provable_shape_conflicts_warn_at_compile_time() {
    // Statically known mismatched shapes produce a sema warning (kept a
    // warning, not an error, because MATLAB semantics are runtime).
    let (program, _) = matic::parse("function y = f(a, b)\ny = a + b;\nend");
    let analysis = matic_sema::analyze(&program, "f", &[arg::vector(4), arg::vector(8)]);
    assert!(analysis
        .diags
        .iter()
        .any(|d| d.message.contains("mismatch")));
}

#[test]
fn unknown_builtin_is_reported_with_name() {
    let err = Compiler::new()
        .compile(
            "function y = f(x)\ny = quux(x);\nend",
            "f",
            &[arg::scalar()],
        )
        .unwrap_err();
    let text = err.to_string();
    assert!(text.contains("quux"), "{text}");
}

#[test]
fn sim_errors_carry_structured_kinds() {
    use matic::SimErrorKind;
    let compiled = Compiler::new()
        .compile(
            "function y = f(x, i)\ny = x(i);\nend",
            "f",
            &[arg::vector(4), arg::scalar()],
        )
        .expect("compiles");
    let oob = compiled
        .simulate(vec![
            SimVal::row(&[1.0, 2.0, 3.0, 4.0]),
            SimVal::scalar(9.0),
        ])
        .unwrap_err();
    assert_eq!(oob.kind, SimErrorKind::OutOfBounds);
    assert!(!oob.is_fuel_exhausted());
}

#[test]
fn fuel_exhaustion_is_a_distinct_error_kind() {
    use matic::SimErrorKind;
    let compiled = Compiler::new()
        .compile(
            "function y = f(x)\ny = 0;\nwhile 1\ny = y + 1;\nend\nend",
            "f",
            &[arg::scalar()],
        )
        .expect("compiles");
    let err = compiled
        .simulator()
        .with_fuel(50_000)
        .run(vec![SimVal::scalar(1.0)])
        .unwrap_err();
    assert_eq!(err.kind, SimErrorKind::FuelExhausted);
    assert!(err.is_fuel_exhausted());
    assert!(err.message.contains("fuel exhausted"), "{err}");
}

#[test]
fn entry_signature_arity_mismatch_is_a_sema_error() {
    let err = Compiler::new()
        .compile(
            "function y = f(x, h)\ny = x + h;\nend",
            "f",
            &[arg::vector(8)],
        )
        .unwrap_err();
    match err {
        CompileError::Sema(d) => {
            assert!(d.message.contains("expects 2 arguments"), "{d}");
        }
        other => panic!("expected sema error, got {other}"),
    }
}
