//! Robustness fuzzing: the frontend must never panic, whatever bytes it
//! is fed — it either parses or reports diagnostics.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary ASCII soup never panics the lexer/parser.
    #[test]
    fn parser_never_panics_on_ascii(src in "[ -~\n\t]{0,200}") {
        let _ = matic::parse(&src);
    }

    /// Arbitrary UTF-8 never panics either.
    #[test]
    fn parser_never_panics_on_unicode(src in "\\PC{0,80}") {
        let _ = matic::parse(&src);
    }

    /// MATLAB-shaped token soup: plausible statement fragments in random
    /// order stress the recovery paths harder than raw bytes.
    #[test]
    fn parser_recovers_from_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("for"), Just("end"), Just("if"), Just("while"),
                Just("function"), Just("="), Just("("), Just(")"),
                Just("["), Just("]"), Just(";"), Just(","), Just(":"),
                Just("+"), Just("*"), Just(".^"), Just("'"), Just("x"),
                Just("1"), Just("2.5"), Just("3i"), Just("\n"),
                Just("..."), Just("%c"), Just("'s'"), Just("~"),
            ],
            0..60,
        )
    ) {
        let src: String = toks.join(" ");
        let _ = matic::parse(&src);
    }

    /// Whatever parses cleanly must also pretty-print and re-parse
    /// cleanly (no printer-introduced syntax errors).
    #[test]
    fn clean_parses_reprint_cleanly(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("x"), Just("y"), Just("1"), Just("2"), Just("+"),
                Just("*"), Just("("), Just(")"), Just("="), Just(";"),
                Just("\n"),
            ],
            0..40,
        )
    ) {
        let src: String = toks.join(" ");
        let (program, diags) = matic::parse(&src);
        if !diags.has_errors() {
            let printed = matic_frontend::print_program(&program);
            let (_, d2) = matic::parse(&printed);
            prop_assert!(
                !d2.has_errors(),
                "printer broke a clean parse:\nsrc: {src:?}\nprinted:\n{printed}"
            );
        }
    }
}

/// The interpreter must also never panic on programs that parse — fuel
/// and errors, never unwinding.
#[test]
fn interpreter_handles_adversarial_programs() {
    let cases = [
        "x = [];\ny = x(1);",                 // index empty
        "x = 1;\nx(0) = 2;",                  // zero index
        "x = [1 2] * [3 4];",                 // inner dim mismatch
        "x = 'abc' + 1;",                     // char arithmetic
        "while 1\nend",                       // empty infinite loop (fuel)
        "x = zeros(1e3, 1e3);\ny = x * x;",   // big but bounded
        "f = @(x) f(x);\ny = f(1);",          // self-capturing handle
        "x = 1 / 0;\ny = 0 / 0;\nz = x - x;", // inf/nan arithmetic
    ];
    for src in cases {
        let Ok(mut interp) = matic::Interpreter::from_source(src) else {
            continue;
        };
        interp.set_fuel(200_000);
        let _ = interp.run_script(); // may err; must not panic
    }
}
