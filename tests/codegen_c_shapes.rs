//! Generated-C shape tests: beyond "it runs", these pin down the
//! structural properties of the emitted code that downstream ASIP
//! toolchains rely on.

use matic::{arg, Compiler, OptLevel};

fn compile(src: &str, entry: &str, args: &[matic::Ty]) -> matic::Compiled {
    Compiler::new().compile(src, entry, args).expect("compiles")
}

#[test]
fn module_is_a_single_compilation_unit() {
    // The paper's "Single Compilation Unit" keyword: one .c containing
    // every reachable function, with forward declarations first.
    let src = "function y = top(x)\ny = helper(x) * big(x);\nend\n\
               function y = helper(x)\ny = x + 1;\nend\n\
               function y = big(x)\nacc = 0;\nfor i = 1:100\n acc = acc + i * x;\nend\ny = acc;\nend";
    let m = compile(src, "top", &[arg::scalar()]).c;
    for f in ["mt_top", "mt_helper", "mt_big"] {
        assert!(
            m.source.matches(&format!("void {f}(")).count() >= 2,
            "{f} needs a forward declaration and a definition"
        );
    }
    assert!(m.source.contains("#include \"matic_rt.h\""));
    assert!(m.source.contains("#include \"matic_intrinsics.h\""));
}

#[test]
fn scalar_signature_shapes() {
    let m = compile(
        "function [y, z] = f(a, b)\ny = a + b;\nz = a - b;\nend",
        "f",
        &[arg::scalar(), arg::cx_scalar()],
    )
    .c;
    assert!(m
        .source
        .contains("void mt_f(double v0_a_in, matic_cx v1_b_in, matic_cx *out_"));
}

#[test]
fn array_params_are_const_pointers() {
    let m = compile(
        "function y = f(x)\ny = sum(x);\nend",
        "f",
        &[arg::vector(16)],
    )
    .c;
    assert!(m.source.contains("const matic_arr *"));
    // Read-only parameter: bound by value, not cloned.
    assert!(!m.source.contains("matic_arr_clone"));
}

#[test]
fn mutated_array_params_are_cloned() {
    // MATLAB value semantics: writing a parameter must not be visible to
    // the caller.
    let m = compile(
        "function y = f(x)\nx(1) = 99;\ny = x;\nend",
        "f",
        &[arg::vector(4)],
    )
    .c;
    assert!(
        m.source.contains("matic_arr_clone"),
        "stored-to parameter needs a defensive copy:\n{}",
        m.source
    );
}

#[test]
fn intrinsics_take_pointer_stride_pairs() {
    let m = compile(
        "function y = f(x)\ny = x(1:2:end) .* x(2:2:end);\nend",
        "f",
        &[arg::vector(32)],
    )
    .c;
    // A strided slice feeds the intrinsic directly (slice forwarding):
    // stride argument 2 appears in the call.
    let line = m
        .source
        .lines()
        .find(|l| l.contains("__asip_vmul"))
        .expect("vmul emitted");
    assert!(line.contains(", (int)(2.0),"), "strided access: {line}");
}

#[test]
fn complex_kernels_use_cx_types_end_to_end() {
    let m = compile(
        "function y = f(x, w)\ny = x .* conj(w);\nend",
        "f",
        &[arg::cx_vector(8), arg::cx_vector(8)],
    )
    .c;
    assert!(m.source.contains("const matic_carr *"));
    assert!(m.source.contains("matic_carr *out_"));
    assert!(m.source.contains("__asip_vcconj") || m.source.contains("__asip_vcmul"));
}

#[test]
fn fprintf_formats_are_translated() {
    let m = compile(
        "function f(x)\nfprintf('x = %d, half = %f\\n', x, x / 2);\nend",
        "f",
        &[arg::scalar()],
    )
    .c;
    // %d on a double becomes %.0f; \n becomes a real newline escape.
    assert!(
        m.source.contains("printf(\"x = %.0f, half = %f\\n\""),
        "{}",
        m.source
    );
}

#[test]
fn error_builtin_exits_nonzero() {
    let m = compile(
        "function y = f(x)\nif x < 0\n error('bad');\nend\ny = x;\nend",
        "f",
        &[arg::scalar()],
    )
    .c;
    assert!(m.source.contains("fprintf(stderr"));
    assert!(m.source.contains("exit(2);"));
}

#[test]
fn matrix_literals_are_column_major() {
    let m = compile("function y = f()\ny = [1 2 3; 4 5 6];\nend", "f", &[]).c;
    // Element (row 1, col 2) = 2 lands at linear index 2 (column-major).
    assert!(m.source.contains(".data[2] = 2.0;"), "{}", m.source);
    assert!(m.source.contains(".data[1] = 4.0;"), "{}", m.source);
}

#[test]
fn while_loops_reevaluate_conditions() {
    let m = compile(
        "function y = f(n)\ny = n;\nwhile y > 1\n y = y / 2;\nend\nend",
        "f",
        &[arg::scalar()],
    )
    .c;
    assert!(m.source.contains("for (;;) {"));
    assert!(m.source.contains("break;"));
}

#[test]
fn counted_loops_use_integer_trip_counts() {
    // Trip counts computed once, not float-compared per iteration.
    let m = compile(
        "function s = f(n)\ns = 0;\nfor i = 1:n\n s = s + i;\nend\nend",
        "f",
        &[arg::scalar()],
    )
    .c;
    assert!(m.source.contains("(int)floor("), "{}", m.source);
}

#[test]
fn baseline_and_full_share_runtime_headers() {
    let src = "function y = f(a, b)\ny = a .* b;\nend";
    let args = [arg::vector(8), arg::vector(8)];
    let full = compile(src, "f", &args).c;
    let base = Compiler::new()
        .opt_level(OptLevel::baseline())
        .compile(src, "f", &args)
        .expect("compiles")
        .c;
    assert_eq!(full.rt_header, base.rt_header);
    assert_eq!(full.intrinsics_header, base.intrinsics_header);
}
