//! Integration tests for the source-level cycle profiler.
//!
//! Span propagation: the decode stage must not invent source locations —
//! every decoded instruction's span is a span that exists somewhere in its
//! function's MIR (statement spans, or the function header for synthesized
//! control). Attribution: on the FIR benchmark virtually all cycles belong
//! to the multiply-accumulate line of the inner loop, and the profile's
//! line table must say so.

use matic::{arg, Compiler, Cx, IsaSpec, Matrix, OptLevel, SimVal};
use matic_asip::decode_program;
use matic_benchkit::SUITE;
use matic_frontend::span::{SourceMap, Span};
use matic_isa::json::Json;
use matic_mir::ir::Stmt;
use std::collections::HashSet;

/// Collects every span reachable in a statement tree.
fn collect_spans(stmts: &[Stmt], out: &mut HashSet<Span>) {
    for s in stmts {
        out.insert(s.span());
        match s {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_spans(then_body, out);
                collect_spans(else_body, out);
            }
            Stmt::For { body, .. } => collect_spans(body, out),
            Stmt::While {
                cond_defs, body, ..
            } => {
                collect_spans(cond_defs, out);
                collect_spans(body, out);
            }
            _ => {}
        }
    }
}

/// Every decoded instruction's span must come from its function's MIR:
/// either a statement span, the function header span, or the dummy span
/// used for synthesized operations. Checked across the whole benchmark
/// suite at both opt levels, so inlined and vectorized bodies are covered.
#[test]
fn decoded_spans_come_from_the_source_function() {
    for (label, opt) in [
        ("baseline", OptLevel::baseline()),
        ("full", OptLevel::full()),
    ] {
        for b in SUITE {
            let n = if b.id == "matmul" { 8 } else { 64 };
            let compiled = Compiler::new()
                .target(IsaSpec::dsp16())
                .opt_level(opt)
                .compile(b.source, b.entry, &b.arg_types(n))
                .unwrap_or_else(|e| panic!("{} [{label}]: compile failed: {e}", b.id));
            let decoded = decode_program(&compiled.mir);
            let src_len = b.source.len() as u32;
            for (f, d) in compiled.mir.functions.iter().zip(&decoded.funcs) {
                let mut known = HashSet::new();
                known.insert(Span::dummy());
                known.insert(f.span);
                collect_spans(&f.body, &mut known);
                for (pc, inst) in d.code.iter().enumerate() {
                    let sp = inst.span();
                    assert!(
                        known.contains(&sp),
                        "{} [{label}] fn `{}` pc {pc}: span {sp:?} not in the \
                         function's MIR",
                        b.id,
                        f.name
                    );
                    assert!(
                        sp.end <= src_len,
                        "{} [{label}] fn `{}` pc {pc}: span {sp:?} past end of \
                         source ({src_len} bytes)",
                        b.id,
                        f.name
                    );
                }
            }
        }
    }
}

fn ramp(n: usize) -> SimVal {
    let data: Vec<Cx> = (0..n)
        .map(|i| Cx::new((i % 7) as f64 * 0.25 - 0.5, 0.0))
        .collect();
    SimVal::Arr(Matrix::new(1, n, data))
}

/// The canonical profile demo from the docs: a 256-tap FIR over 1024
/// samples attributes ≥90% of all cycles to the MAC line of the inner
/// loop (the acceptance bar from the issue).
#[test]
fn fir_profile_attributes_mac_line() {
    let fir = SUITE.iter().find(|b| b.id == "fir").expect("fir in suite");
    let compiled = Compiler::new()
        .target(IsaSpec::dsp16())
        .opt_level(OptLevel::full())
        .compile(
            fir.source,
            fir.entry,
            &[arg::vector(1024), arg::vector(256)],
        )
        .expect("fir compiles");
    let outcome = compiled
        .simulator()
        .with_profiling(true)
        .run(vec![ramp(1024), ramp(256)])
        .expect("fir runs");
    let profile = outcome.profile.expect("profile attached");
    let map = SourceMap::new(fir.source);

    let mac_line = fir
        .source
        .lines()
        .position(|l| l.contains("acc = acc +"))
        .expect("fir kernel has a MAC line") as u32
        + 1;

    let lines = profile.lines(&map);
    let total: u64 = lines.iter().map(|(_, c)| c.cycles).sum();
    let mac_cycles = lines
        .iter()
        .find(|(l, _)| *l == mac_line)
        .map(|(_, c)| c.cycles)
        .unwrap_or(0);
    assert_eq!(total, outcome.cycles.total, "profile accounts every cycle");
    let frac = mac_cycles as f64 / total as f64;
    assert!(
        frac >= 0.90,
        "MAC line {mac_line} holds {frac:.3} of cycles, expected >= 0.90"
    );

    // The SIMD MAC should report near-full lane occupancy on these sizes.
    let mac = &lines.iter().find(|(l, _)| *l == mac_line).unwrap().1;
    let util = mac.lane_utilization().expect("MAC line ran on SIMD lanes");
    assert!(util > 0.9, "lane utilization {util:.3} unexpectedly low");

    // And the JSON document reflects the same attribution.
    let doc = profile.to_json(&map, &compiled.entry, &compiled.spec.name);
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("matic-profile-v1")
    );
    let Some(Json::Arr(json_lines)) = doc.get("lines") else {
        panic!("lines array missing");
    };
    let mac_row = json_lines
        .iter()
        .find(|row| row.get("line").and_then(Json::as_u64) == Some(mac_line as u64))
        .expect("MAC line present in JSON");
    let frac_json = mac_row
        .get("fraction")
        .and_then(Json::as_f64)
        .expect("fraction field");
    assert!((frac_json - frac).abs() < 1e-12);
}
