//! Differential test for the pre-decoded execution engine: for every
//! benchmark × opt-level × target cell, the linear engine (`run`, via the
//! decode stage) must produce a bit-identical [`matic_asip::SimOutcome`] —
//! outputs, printed text, total cycles, instruction count, and the full
//! per-class cycle breakdown — to the original tree-walking interpreter
//! (`run_interpreted`). The decode stage is a pure representation change;
//! any divergence is a bug.

use matic::{Compiler, Engine, IsaSpec, OptLevel};
use matic_asip::AsipMachine;
use matic_benchkit::{to_sim, SUITE};
use std::sync::Arc;

/// Small-but-representative sizes so the whole suite runs quickly.
fn test_size(id: &str) -> usize {
    match id {
        "matmul" => 8,
        "fft" => 64,
        _ => 128,
    }
}

fn check_cell(spec_name: &str, spec: IsaSpec, label: &str, opt: OptLevel) {
    for b in SUITE {
        let n = test_size(b.id);
        let compiled = Compiler::new()
            .target(spec.clone())
            .opt_level(opt)
            .compile(b.source, b.entry, &b.arg_types(n))
            .unwrap_or_else(|e| panic!("{} [{spec_name}/{label}]: compile failed: {e}", b.id));
        let inputs: Vec<_> = b.inputs(n, 42).iter().map(to_sim).collect();

        // Tree-walking engine on the same machine configuration — the
        // reference semantics.
        let mut machine = AsipMachine::from_shared(Arc::clone(&compiled.spec));
        if !opt.intrinsics {
            machine = machine.without_intrinsics();
        }
        let interpreted = machine
            .run_interpreted(&compiled.mir, &compiled.entry, inputs.clone())
            .unwrap_or_else(|e| {
                panic!("{} [{spec_name}/{label}]: tree-walk sim failed: {e}", b.id)
            });

        // Every engine exposed through the public reusable-simulator API
        // must reproduce it bit-for-bit.
        for engine in Engine::ALL {
            let outcome = compiled
                .simulator()
                .with_engine(engine)
                .run(inputs.clone())
                .unwrap_or_else(|e| {
                    panic!("{} [{spec_name}/{label}/{engine}]: sim failed: {e}", b.id)
                });
            assert_eq!(
                outcome.cycles.total, interpreted.cycles.total,
                "{} [{spec_name}/{label}/{engine}]: total cycles diverge",
                b.id
            );
            assert_eq!(
                outcome.cycles.instructions, interpreted.cycles.instructions,
                "{} [{spec_name}/{label}/{engine}]: instruction counts diverge",
                b.id
            );
            assert_eq!(
                outcome.cycles.by_class, interpreted.cycles.by_class,
                "{} [{spec_name}/{label}/{engine}]: per-class cycle breakdown diverges",
                b.id
            );
            // Outputs and printed text must be bit-identical, not close.
            assert_eq!(
                outcome, interpreted,
                "{} [{spec_name}/{label}/{engine}]: outcomes diverge",
                b.id
            );
        }
    }
}

/// Profiling must be observationally free: enabling per-span attribution
/// may not change a single cycle, instruction, output byte, or printed
/// character on either engine — the profiler only *observes* charges that
/// happen anyway.
fn check_profiling_is_free(spec_name: &str, spec: IsaSpec, opt: OptLevel) {
    for b in SUITE {
        let n = test_size(b.id);
        let compiled = Compiler::new()
            .target(spec.clone())
            .opt_level(opt)
            .compile(b.source, b.entry, &b.arg_types(n))
            .unwrap_or_else(|e| panic!("{} [{spec_name}]: compile failed: {e}", b.id));
        let inputs: Vec<_> = b.inputs(n, 42).iter().map(to_sim).collect();

        // Decoded engine: off vs on.
        let plain = compiled.simulator().run(inputs.clone()).unwrap();
        let profiled = compiled
            .simulator()
            .with_profiling(true)
            .run(inputs.clone())
            .unwrap();
        assert!(
            plain.profile.is_none(),
            "{}: profile off must be None",
            b.id
        );
        let profile = profiled.profile.as_ref().unwrap_or_else(|| {
            panic!("{} [{spec_name}]: profiling on must attach a profile", b.id)
        });
        assert_eq!(
            profile.total_cycles(),
            profiled.cycles.total,
            "{} [{spec_name}]: profile must account for every cycle",
            b.id
        );
        assert_eq!(
            (&plain.outputs, &plain.printed, &plain.cycles),
            (&profiled.outputs, &profiled.printed, &profiled.cycles),
            "{} [{spec_name}]: profiling changed decoded-engine behavior",
            b.id
        );

        // Tree-walk engine: same invariant.
        let machine = || {
            let mut m = AsipMachine::from_shared(Arc::clone(&compiled.spec));
            if !opt.intrinsics {
                m = m.without_intrinsics();
            }
            m
        };
        let plain_tw = machine()
            .run_interpreted(&compiled.mir, &compiled.entry, inputs.clone())
            .unwrap();
        let profiled_tw = machine()
            .with_profiling(true)
            .run_interpreted(&compiled.mir, &compiled.entry, inputs)
            .unwrap();
        assert_eq!(
            (&plain_tw.outputs, &plain_tw.printed, &plain_tw.cycles),
            (
                &profiled_tw.outputs,
                &profiled_tw.printed,
                &profiled_tw.cycles
            ),
            "{} [{spec_name}]: profiling changed tree-walk behavior",
            b.id
        );

        // Both engines must attribute identically, span by span.
        assert_eq!(
            profiled.profile, profiled_tw.profile,
            "{} [{spec_name}]: per-span attribution diverges between engines",
            b.id
        );
    }
}

#[test]
fn profiling_is_observationally_free_dsp16_full() {
    check_profiling_is_free("dsp16", IsaSpec::dsp16(), OptLevel::full());
}

#[test]
fn profiling_is_observationally_free_dsp16_baseline() {
    check_profiling_is_free("dsp16", IsaSpec::dsp16(), OptLevel::baseline());
}

#[test]
fn profiling_is_observationally_free_scalar_full() {
    check_profiling_is_free("scalar", IsaSpec::scalar_baseline(), OptLevel::full());
}

#[test]
fn decoded_engine_matches_tree_walker_dsp16_baseline() {
    check_cell("dsp16", IsaSpec::dsp16(), "baseline", OptLevel::baseline());
}

#[test]
fn decoded_engine_matches_tree_walker_dsp16_full() {
    check_cell("dsp16", IsaSpec::dsp16(), "full", OptLevel::full());
}

#[test]
fn decoded_engine_matches_tree_walker_scalar_baseline_opt() {
    check_cell(
        "scalar",
        IsaSpec::scalar_baseline(),
        "baseline",
        OptLevel::baseline(),
    );
}

#[test]
fn decoded_engine_matches_tree_walker_scalar_full() {
    check_cell(
        "scalar",
        IsaSpec::scalar_baseline(),
        "full",
        OptLevel::full(),
    );
}

/// Sweeps every fuel value from 0 to one past the program's full budget
/// and checks that all three engines agree exactly on the outcome at each
/// value: same success/failure, same error kind, same message and span on
/// failure, bit-identical outcome on success.
///
/// This pins the native engine's bulk fuel accounting: superinstructions
/// and compiled chains subtract fuel for a whole block up front (after
/// checking it is available) and otherwise fall back to per-op execution,
/// so every fuel value that would exhaust *mid*-block must still report
/// exhaustion at exactly the statement the linear engine would.
fn check_fuel_sweep(source: &str, entry: &str, sig: &[matic::Ty], opt: OptLevel) {
    let compiled = Compiler::new()
        .opt_level(opt)
        .compile(source, entry, sig)
        .expect("compile");
    let inputs: Vec<matic::SimVal> = sig
        .iter()
        .map(|t| {
            let n = t.shape.numel().unwrap_or(1);
            matic::SimVal::row(&(0..n).map(|k| (k % 7) as f64 - 3.0).collect::<Vec<_>>())
        })
        .collect();
    // Find a fuel budget that lets the program finish (statement count is
    // bounded by total cycles).
    let full = compiled
        .simulator()
        .run(inputs.clone())
        .expect("unlimited run succeeds");
    let budget = full.cycles.total + 1;
    let mut exhausted_at = 0u64;
    let mut completed_at = None;
    let mut fuel = 0u64;
    while fuel <= budget {
        let mut results = Vec::new();
        for engine in Engine::ALL {
            let r = compiled
                .simulator()
                .with_engine(engine)
                .with_fuel(fuel)
                .run(inputs.clone());
            results.push((engine, r));
        }
        let (_, reference) = &results[0];
        for (engine, r) in &results[1..] {
            match (reference, r) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "fuel {fuel}: {engine} outcome diverges"),
                (Err(a), Err(b)) => {
                    assert_eq!(a.kind, b.kind, "fuel {fuel}: {engine} error kind diverges");
                    assert_eq!(
                        a.to_string(),
                        b.to_string(),
                        "fuel {fuel}: {engine} error message diverges"
                    );
                }
                _ => panic!(
                    "fuel {fuel}: {engine} disagrees with tree on success: {:?} vs {:?}",
                    reference.as_ref().map(|_| ()),
                    r.as_ref().map(|_| ())
                ),
            }
        }
        match reference {
            Err(e) => {
                assert_eq!(
                    e.kind,
                    matic_asip::SimErrorKind::FuelExhausted,
                    "fuel {fuel}: unexpected error {e}"
                );
                exhausted_at += 1;
                fuel += 1;
            }
            Ok(_) => {
                // Once any fuel value completes, every larger one must too
                // (checked implicitly by the final full-budget iteration).
                if completed_at.is_none() {
                    completed_at = Some(fuel);
                }
                // The interesting boundary is behind us; jump to the end.
                fuel = if fuel < budget { budget } else { budget + 1 };
            }
        }
    }
    let completed_at = completed_at.expect("sweep must reach a completing fuel value");
    assert!(
        exhausted_at >= 2,
        "sweep never exercised exhaustion (completes at {completed_at})"
    );
}

/// A kernel whose optimized native form contains both multi-op compiled
/// chains (the scalar MAC loop) and vector superinstructions, so the
/// sweep crosses block boundaries of both kinds.
const FUEL_SWEEP_SRC: &str = "function y = f(x, h)\n\
     n = numel(x);\n\
     m = numel(h);\n\
     y = zeros(1, n);\n\
     for i = 1:n\n\
       acc = 0;\n\
       for k = 1:m\n\
         if i - k + 1 >= 1\n\
           acc = acc + h(k) * x(i - k + 1);\n\
         end\n\
       end\n\
       y(i) = acc;\n\
     end\n\
     y = y * 2;\n\
     end\n";

#[test]
fn fuel_exhaustion_agrees_across_engines_baseline() {
    check_fuel_sweep(
        FUEL_SWEEP_SRC,
        "f",
        &[matic::arg::vector(12), matic::arg::vector(4)],
        OptLevel::baseline(),
    );
}

#[test]
fn fuel_exhaustion_agrees_across_engines_full() {
    check_fuel_sweep(
        FUEL_SWEEP_SRC,
        "f",
        &[matic::arg::vector(12), matic::arg::vector(4)],
        OptLevel::full(),
    );
}
