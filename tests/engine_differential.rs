//! Differential test for the pre-decoded execution engine: for every
//! benchmark × opt-level × target cell, the linear engine (`run`, via the
//! decode stage) must produce a bit-identical [`matic_asip::SimOutcome`] —
//! outputs, printed text, total cycles, instruction count, and the full
//! per-class cycle breakdown — to the original tree-walking interpreter
//! (`run_interpreted`). The decode stage is a pure representation change;
//! any divergence is a bug.

use matic::{Compiler, IsaSpec, OptLevel};
use matic_asip::AsipMachine;
use matic_benchkit::{to_sim, SUITE};
use std::sync::Arc;

/// Small-but-representative sizes so the whole suite runs quickly.
fn test_size(id: &str) -> usize {
    match id {
        "matmul" => 8,
        "fft" => 64,
        _ => 128,
    }
}

fn check_cell(spec_name: &str, spec: IsaSpec, label: &str, opt: OptLevel) {
    for b in SUITE {
        let n = test_size(b.id);
        let compiled = Compiler::new()
            .target(spec.clone())
            .opt_level(opt)
            .compile(b.source, b.entry, &b.arg_types(n))
            .unwrap_or_else(|e| panic!("{} [{spec_name}/{label}]: compile failed: {e}", b.id));
        let inputs: Vec<_> = b.inputs(n, 42).iter().map(to_sim).collect();

        // Decoded engine, via the public reusable-simulator API.
        let decoded = compiled
            .simulator()
            .run(inputs.clone())
            .unwrap_or_else(|e| panic!("{} [{spec_name}/{label}]: decoded sim failed: {e}", b.id));

        // Tree-walking engine on the same machine configuration.
        let mut machine = AsipMachine::from_shared(Arc::clone(&compiled.spec));
        if !opt.intrinsics {
            machine = machine.without_intrinsics();
        }
        let interpreted = machine
            .run_interpreted(&compiled.mir, &compiled.entry, inputs)
            .unwrap_or_else(|e| {
                panic!("{} [{spec_name}/{label}]: tree-walk sim failed: {e}", b.id)
            });

        assert_eq!(
            decoded.cycles.total, interpreted.cycles.total,
            "{} [{spec_name}/{label}]: total cycles diverge",
            b.id
        );
        assert_eq!(
            decoded.cycles.instructions, interpreted.cycles.instructions,
            "{} [{spec_name}/{label}]: instruction counts diverge",
            b.id
        );
        assert_eq!(
            decoded.cycles.by_class, interpreted.cycles.by_class,
            "{} [{spec_name}/{label}]: per-class cycle breakdown diverges",
            b.id
        );
        // Outputs and printed text must be bit-identical, not just close.
        assert_eq!(
            decoded, interpreted,
            "{} [{spec_name}/{label}]: outcomes diverge",
            b.id
        );
    }
}

/// Profiling must be observationally free: enabling per-span attribution
/// may not change a single cycle, instruction, output byte, or printed
/// character on either engine — the profiler only *observes* charges that
/// happen anyway.
fn check_profiling_is_free(spec_name: &str, spec: IsaSpec, opt: OptLevel) {
    for b in SUITE {
        let n = test_size(b.id);
        let compiled = Compiler::new()
            .target(spec.clone())
            .opt_level(opt)
            .compile(b.source, b.entry, &b.arg_types(n))
            .unwrap_or_else(|e| panic!("{} [{spec_name}]: compile failed: {e}", b.id));
        let inputs: Vec<_> = b.inputs(n, 42).iter().map(to_sim).collect();

        // Decoded engine: off vs on.
        let plain = compiled.simulator().run(inputs.clone()).unwrap();
        let profiled = compiled
            .simulator()
            .with_profiling(true)
            .run(inputs.clone())
            .unwrap();
        assert!(
            plain.profile.is_none(),
            "{}: profile off must be None",
            b.id
        );
        let profile = profiled.profile.as_ref().unwrap_or_else(|| {
            panic!("{} [{spec_name}]: profiling on must attach a profile", b.id)
        });
        assert_eq!(
            profile.total_cycles(),
            profiled.cycles.total,
            "{} [{spec_name}]: profile must account for every cycle",
            b.id
        );
        assert_eq!(
            (&plain.outputs, &plain.printed, &plain.cycles),
            (&profiled.outputs, &profiled.printed, &profiled.cycles),
            "{} [{spec_name}]: profiling changed decoded-engine behavior",
            b.id
        );

        // Tree-walk engine: same invariant.
        let machine = || {
            let mut m = AsipMachine::from_shared(Arc::clone(&compiled.spec));
            if !opt.intrinsics {
                m = m.without_intrinsics();
            }
            m
        };
        let plain_tw = machine()
            .run_interpreted(&compiled.mir, &compiled.entry, inputs.clone())
            .unwrap();
        let profiled_tw = machine()
            .with_profiling(true)
            .run_interpreted(&compiled.mir, &compiled.entry, inputs)
            .unwrap();
        assert_eq!(
            (&plain_tw.outputs, &plain_tw.printed, &plain_tw.cycles),
            (
                &profiled_tw.outputs,
                &profiled_tw.printed,
                &profiled_tw.cycles
            ),
            "{} [{spec_name}]: profiling changed tree-walk behavior",
            b.id
        );

        // Both engines must attribute identically, span by span.
        assert_eq!(
            profiled.profile, profiled_tw.profile,
            "{} [{spec_name}]: per-span attribution diverges between engines",
            b.id
        );
    }
}

#[test]
fn profiling_is_observationally_free_dsp16_full() {
    check_profiling_is_free("dsp16", IsaSpec::dsp16(), OptLevel::full());
}

#[test]
fn profiling_is_observationally_free_dsp16_baseline() {
    check_profiling_is_free("dsp16", IsaSpec::dsp16(), OptLevel::baseline());
}

#[test]
fn profiling_is_observationally_free_scalar_full() {
    check_profiling_is_free("scalar", IsaSpec::scalar_baseline(), OptLevel::full());
}

#[test]
fn decoded_engine_matches_tree_walker_dsp16_baseline() {
    check_cell("dsp16", IsaSpec::dsp16(), "baseline", OptLevel::baseline());
}

#[test]
fn decoded_engine_matches_tree_walker_dsp16_full() {
    check_cell("dsp16", IsaSpec::dsp16(), "full", OptLevel::full());
}

#[test]
fn decoded_engine_matches_tree_walker_scalar_baseline_opt() {
    check_cell(
        "scalar",
        IsaSpec::scalar_baseline(),
        "baseline",
        OptLevel::baseline(),
    );
}

#[test]
fn decoded_engine_matches_tree_walker_scalar_full() {
    check_cell(
        "scalar",
        IsaSpec::scalar_baseline(),
        "full",
        OptLevel::full(),
    );
}
