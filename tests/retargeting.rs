//! Retargetability integration tests — the paper's parameterized-ISA
//! claim, exercised across the crate boundary.

use matic::{arg, Compiler, Features, IsaSpec, OpClass, OptLevel, SimVal};
use matic_benchkit::{benchmark, to_sim};

const KERNEL: &str = "function y = gain(x, k)\ny = k .* x;\nend";

#[test]
fn isa_description_round_trips_through_compilation() {
    // Export → edit → reload → compile must behave identically to using
    // the in-memory spec.
    let spec = IsaSpec::dsp16();
    let json = spec.to_json();
    let reloaded = IsaSpec::from_json(&json).expect("round-trips");
    assert_eq!(spec, reloaded);

    let args = [arg::vector(64), arg::scalar()];
    let a = Compiler::new()
        .target(spec)
        .compile(KERNEL, "gain", &args)
        .expect("compiles");
    let b = Compiler::new()
        .target(reloaded)
        .compile(KERNEL, "gain", &args)
        .expect("compiles");
    assert_eq!(a.c.source, b.c.source);
}

#[test]
fn intrinsic_prefix_is_a_parameter() {
    let mut spec = IsaSpec::dsp16();
    spec.intrinsic_prefix = "__vendor".to_string();
    let compiled = Compiler::new()
        .target(spec)
        .compile(KERNEL, "gain", &[arg::vector(64), arg::scalar()])
        .expect("compiles");
    assert!(compiled.c.source.contains("__vendor_vmul"));
    assert!(!compiled.c.source.contains("__asip_"));
    assert!(compiled.c.intrinsics_header.contains("__vendor_vmac"));
}

#[test]
fn all_feature_combinations_compile_and_agree() {
    // 8 feature combinations × one complex kernel: everything must
    // compile and produce identical simulated outputs (only cycles may
    // differ).
    let src = "function y = mix(x, w)\ny = x .* conj(w);\nend";
    let args = [arg::cx_vector(48), arg::cx_vector(48)];
    let x: Vec<(f64, f64)> = (0..48).map(|i| (i as f64, -(i as f64))).collect();
    let w: Vec<(f64, f64)> = (0..48).map(|i| (1.0, i as f64 * 0.25)).collect();
    let inputs = vec![SimVal::cx_row(&x), SimVal::cx_row(&w)];

    let mut reference: Option<Vec<SimVal>> = None;
    for simd in [false, true] {
        for complex in [false, true] {
            for mac in [false, true] {
                let spec = IsaSpec::with_features(Features { simd, complex, mac });
                let compiled = Compiler::new()
                    .target(spec.clone())
                    .compile(src, "mix", &args)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                let out = compiled
                    .simulate(inputs.clone())
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
                match &reference {
                    None => reference = Some(out.outputs),
                    Some(r) => assert_eq!(&out.outputs, r, "{} diverged", spec.name),
                }
            }
        }
    }
}

#[test]
fn wider_simd_never_costs_more_on_data_parallel_kernels() {
    let b = benchmark("fir").expect("fir exists");
    let n = 256;
    let inputs: Vec<_> = b.inputs(n, 11).iter().map(to_sim).collect();
    let mut prev = u64::MAX;
    for w in [1usize, 2, 4, 8, 16, 32] {
        let compiled = Compiler::new()
            .target(IsaSpec::with_width(w))
            .compile(b.source, b.entry, &b.arg_types(n))
            .expect("compiles");
        let cycles = compiled
            .simulate(inputs.clone())
            .expect("simulates")
            .cycles
            .total;
        assert!(cycles <= prev, "width {w} regressed: {cycles} > {prev}");
        prev = cycles;
    }
}

#[test]
fn cost_model_overrides_flow_into_cycle_counts() {
    let b = benchmark("fir").expect("fir exists");
    let n = 128;
    let inputs: Vec<_> = b.inputs(n, 3).iter().map(to_sim).collect();
    let cheap = IsaSpec::dsp16();
    let mut dear = IsaSpec::dsp16();
    dear.costs.set_cost(OpClass::VectorMac, 20);
    let run = |spec: IsaSpec| {
        Compiler::new()
            .target(spec)
            .compile(b.source, b.entry, &b.arg_types(n))
            .expect("compiles")
            .simulate(inputs.clone())
            .expect("simulates")
            .cycles
            .total
    };
    assert!(
        run(dear) > run(cheap),
        "a 10x dearer MAC must show up in the totals"
    );
}

#[test]
fn baseline_opt_level_ignores_capable_hardware() {
    // Even on a fully capable target, the baseline pipeline must model
    // MATLAB-Coder-style code: no intrinsics in C, no custom-instruction
    // cycles in simulation.
    let b = benchmark("cmult").expect("cmult exists");
    let n = 64;
    let compiled = Compiler::new()
        .opt_level(OptLevel::baseline())
        .compile(b.source, b.entry, &b.arg_types(n))
        .expect("compiles");
    assert!(!compiled.c.source.contains("__asip_"));
    let out = compiled
        .simulate(b.inputs(n, 4).iter().map(to_sim).collect())
        .expect("simulates");
    assert_eq!(out.cycles.vector_cycles(), 0);
    assert_eq!(out.cycles.complex_cycles(), 0);
}

#[test]
fn validation_rejects_malformed_target_files() {
    let mut bad = IsaSpec::dsp16();
    bad.vector_width = 0;
    assert!(bad.validate().is_err());
    // And a JSON file missing required fields fails to parse.
    assert!(IsaSpec::from_json("{\"name\": \"x\"}").is_err());
}
