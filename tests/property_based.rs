//! Property-based tests over the whole toolchain.
//!
//! Random programs from a small expression grammar are run through the
//! reference interpreter and through the compile→simulate pipeline; both
//! must agree exactly. Separately, the vectorizer must be semantics-
//! preserving for arbitrary sizes, and parsing must round-trip through
//! the pretty-printer.

use matic::{arg, Compiler, OptLevel, SimVal};
use proptest::prelude::*;

// ---- random scalar expression programs -------------------------------------

/// A tiny expression AST we can render as MATLAB.
#[derive(Debug, Clone)]
enum E {
    X,
    Y,
    K(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Neg(Box<E>),
    Abs(Box<E>),
    Min(Box<E>, Box<E>),
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::X), Just(E::Y), (-9i32..10).prop_map(E::K),];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(a.into(), b.into())),
            inner.clone().prop_map(|a| E::Neg(a.into())),
            inner.clone().prop_map(|a| E::Abs(a.into())),
            (inner.clone(), inner).prop_map(|(a, b)| E::Min(a.into(), b.into())),
        ]
    })
}

fn render(e: &E) -> String {
    match e {
        E::X => "x".into(),
        E::Y => "y".into(),
        E::K(k) => {
            if *k < 0 {
                format!("({k})")
            } else {
                k.to_string()
            }
        }
        E::Add(a, b) => format!("({} + {})", render(a), render(b)),
        E::Sub(a, b) => format!("({} - {})", render(a), render(b)),
        E::Mul(a, b) => format!("({} * {})", render(a), render(b)),
        E::Neg(a) => format!("(-{})", render(a)),
        E::Abs(a) => format!("abs({})", render(a)),
        E::Min(a, b) => format!("min({}, {})", render(a), render(b)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compiled-and-simulated scalar programs agree exactly with the
    /// interpreter (integer inputs keep floating point exact).
    #[test]
    fn compiled_scalar_exprs_match_interpreter(
        e in expr_strategy(),
        x in -50i32..50,
        y in -50i32..50,
    ) {
        let src = format!(
            "function r = f(x, y)\nr = {};\nend",
            render(&e)
        );
        // Oracle.
        let mut interp = matic::Interpreter::from_source(&src).expect("parse");
        let expected = interp
            .call("f", vec![
                matic::Value::scalar(x as f64),
                matic::Value::scalar(y as f64),
            ], 1)
            .expect("interp runs")[0]
            .as_matrix().expect("numeric")
            .as_real_scalar().expect("real");
        // Pipeline.
        let compiled = Compiler::new()
            .compile(&src, "f", &[arg::scalar(), arg::scalar()])
            .expect("compiles");
        let out = compiled
            .simulate(vec![SimVal::scalar(x as f64), SimVal::scalar(y as f64)])
            .expect("simulates");
        let got = out.outputs[0].as_cx().expect("scalar").re;
        prop_assert_eq!(got, expected);
    }

    /// Vectorization is semantics-preserving: baseline and full pipelines
    /// agree bit-for-bit on an element-wise/MAC kernel for arbitrary sizes
    /// and integer contents.
    #[test]
    fn vectorization_preserves_semantics(
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let src = "function [s, z] = k(a, b, g)\n\
                   z = g * a + b .* a;\n\
                   s = sum(a .* b);\n\
                   end";
        let args = [arg::vector(n), arg::vector(n), arg::scalar()];
        let mut st = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        let mut next = move || {
            st ^= st >> 12; st ^= st << 25; st ^= st >> 27;
            ((st >> 58) as i64 - 32) as f64
        };
        let a: Vec<f64> = (0..n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let inputs = vec![SimVal::row(&a), SimVal::row(&b), SimVal::scalar(3.0)];

        let base = Compiler::new().opt_level(OptLevel::baseline())
            .compile(src, "k", &args).expect("baseline compiles");
        let full = Compiler::new()
            .compile(src, "k", &args).expect("full compiles");
        let rb = base.simulate(inputs.clone()).expect("baseline sim");
        let rf = full.simulate(inputs).expect("full sim");
        prop_assert_eq!(&rb.outputs, &rf.outputs);
        // And the optimized build must never be slower.
        prop_assert!(rf.cycles.total <= rb.cycles.total);
    }

    /// Slicing kernels agree between pipelines for arbitrary slice bounds.
    #[test]
    fn slice_kernels_preserve_semantics(
        n in 4usize..64,
        seed in 0u64..500,
    ) {
        let lo = 1 + seed as usize % (n / 2);
        let hi = n / 2 + 1 + (seed as usize / 7) % (n / 2);
        let src = format!(
            "function y = k(x)\n\
             y = zeros(1, {len});\n\
             y(1:{len}) = x({lo}:{hi});\n\
             y = y + x(1:{len});\n\
             end",
            len = hi - lo + 1,
        );
        let args = [arg::vector(n)];
        let x: Vec<f64> = (0..n).map(|i| (i as f64) - 7.0).collect();
        let base = Compiler::new().opt_level(OptLevel::baseline())
            .compile(&src, "k", &args).expect("baseline compiles");
        let full = Compiler::new()
            .compile(&src, "k", &args).expect("full compiles");
        let rb = base.simulate(vec![SimVal::row(&x)]).expect("baseline sim");
        let rf = full.simulate(vec![SimVal::row(&x)]).expect("full sim");
        prop_assert_eq!(&rb.outputs, &rf.outputs);
    }

    /// Pretty-printed programs re-parse to the same printed form
    /// (printer is a fixpoint under parse ∘ print).
    #[test]
    fn printer_is_parse_fixpoint(e in expr_strategy()) {
        let src = format!("function r = f(x, y)\nr = {};\nend", render(&e));
        let (p1, d1) = matic::parse(&src);
        prop_assert!(!d1.has_errors());
        let printed = matic_frontend::print_program(&p1);
        let (p2, d2) = matic::parse(&printed);
        prop_assert!(!d2.has_errors(), "reparse failed:\n{}", printed);
        prop_assert_eq!(printed, matic_frontend::print_program(&p2));
    }
}

/// Simulator fuel protects against non-terminating programs.
#[test]
fn simulator_fuel_is_respected() {
    let src = "function y = f(x)\ny = 0;\nwhile 1 > 0\n y = y + 1;\nend\nend";
    let compiled = Compiler::new()
        .compile(src, "f", &[arg::scalar()])
        .expect("compiles — nontermination is a runtime property");
    let machine = matic::AsipMachine::new(matic::IsaSpec::dsp16()).with_fuel(100_000);
    let err = machine
        .run(&compiled.mir, "f", vec![SimVal::scalar(1.0)])
        .expect_err("must hit the fuel limit");
    assert!(err.message.contains("fuel"));
}
