//! Whole-suite differential test: every benchmark, compiled at both
//! optimization levels, executed on the cycle-level virtual ASIP, must
//! reproduce the reference interpreter's outputs — and the optimized
//! build must not be slower than the baseline.

use matic::{Compiler, OptLevel};
use matic_benchkit::{benchmark, outputs_close, sim_to_cvalue, to_sim, SUITE};

/// Small-but-representative sizes so the whole suite runs quickly.
fn test_size(id: &str) -> usize {
    match id {
        "matmul" => 8,
        "fft" => 64,
        _ => 128,
    }
}

#[test]
fn all_benchmarks_compile_at_both_levels() {
    for b in SUITE {
        let n = test_size(b.id);
        let args = b.arg_types(n);
        for (label, opt) in [
            ("baseline", OptLevel::baseline()),
            ("full", OptLevel::full()),
        ] {
            Compiler::new()
                .opt_level(opt)
                .compile(b.source, b.entry, &args)
                .unwrap_or_else(|e| panic!("{} [{label}] failed to compile: {e}", b.id));
        }
    }
}

#[test]
fn simulated_outputs_match_interpreter_baseline() {
    for b in SUITE {
        let n = test_size(b.id);
        let inputs = b.inputs(n, 2024);
        let expected = &b.reference_outputs(&inputs).expect("interp ok")[0];
        let compiled = Compiler::new()
            .opt_level(OptLevel::baseline())
            .compile(b.source, b.entry, &b.arg_types(n))
            .unwrap_or_else(|e| panic!("{}: {e}", b.id));
        let sim_inputs = inputs.iter().map(to_sim).collect();
        let out = compiled
            .simulate(sim_inputs)
            .unwrap_or_else(|e| panic!("{} baseline sim: {e}", b.id));
        let got = sim_to_cvalue(&out.outputs[0]);
        outputs_close(&got, expected, 1e-9).unwrap_or_else(|e| panic!("{} baseline: {e}", b.id));
    }
}

#[test]
fn simulated_outputs_match_interpreter_optimized() {
    for b in SUITE {
        let n = test_size(b.id);
        let inputs = b.inputs(n, 777);
        let expected = &b.reference_outputs(&inputs).expect("interp ok")[0];
        let compiled = Compiler::new()
            .compile(b.source, b.entry, &b.arg_types(n))
            .unwrap_or_else(|e| panic!("{}: {e}", b.id));
        let sim_inputs = inputs.iter().map(to_sim).collect();
        let out = compiled
            .simulate(sim_inputs)
            .unwrap_or_else(|e| panic!("{} optimized sim: {e}", b.id));
        let got = sim_to_cvalue(&out.outputs[0]);
        outputs_close(&got, expected, 1e-9).unwrap_or_else(|e| panic!("{} optimized: {e}", b.id));
    }
}

#[test]
fn optimization_never_hurts_and_wins_where_expected() {
    let mut speedups = Vec::new();
    for b in SUITE {
        let n = test_size(b.id);
        let inputs = b.inputs(n, 31337);
        let args = b.arg_types(n);
        let base = Compiler::new()
            .opt_level(OptLevel::baseline())
            .compile(b.source, b.entry, &args)
            .expect("baseline compiles");
        let opt = Compiler::new()
            .compile(b.source, b.entry, &args)
            .expect("optimized compiles");
        let rb = base
            .simulate(inputs.iter().map(to_sim).collect())
            .expect("baseline sim");
        let ro = opt
            .simulate(inputs.iter().map(to_sim).collect())
            .expect("optimized sim");
        let s = rb.cycles.total as f64 / ro.cycles.total as f64;
        speedups.push((b.id, s));
        assert!(
            s >= 0.99,
            "{}: optimization must not slow the kernel down (got {s:.2}x)",
            b.id
        );
    }
    // The heavily data-parallel kernels must show a clear win even at
    // these small test sizes.
    for id in ["fir", "cmult", "xcorr"] {
        let s = speedups.iter().find(|(i, _)| *i == id).unwrap().1;
        assert!(s > 2.0, "{id}: expected >2x speedup, got {s:.2}x");
    }
}

#[test]
fn vectorizer_recognizes_the_expected_idioms() {
    type ReportCheck = fn(&matic::VectorizeReport) -> bool;
    let expectations: &[(&str, ReportCheck)] = &[
        ("fir", |r| r.loops.macs >= 1),
        ("cmult", |r| r.arrays.maps >= 1),
        ("xcorr", |r| r.loops.macs >= 1),
        ("matmul", |r| r.fuse.macs_fused >= 1 || r.loops.macs >= 1),
        // IIR's feedback loop must stay scalar; its feed-forward part may
        // vectorize.
        ("iir", |_| true),
    ];
    for (id, check) in expectations {
        let b = benchmark(id).unwrap();
        let n = test_size(id);
        let compiled = Compiler::new()
            .compile(b.source, b.entry, &b.arg_types(n))
            .unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(
            check(&compiled.report),
            "{id}: unexpected vectorization report {:?}",
            compiled.report
        );
    }
}
