//! Full-pipeline differential fuzzing: generate well-typed random MATLAB
//! programs and require that every execution engine agrees on the
//! *outcome* — both successful outputs and error outcomes (out-of-bounds
//! reads, fuel exhaustion).
//!
//! Seven legs per program:
//!
//! 1. the reference interpreter,
//! 2. the tree-walking ASIP simulator,
//! 3. the pre-decoded linear ASIP simulator at full optimization,
//! 4. the fused direct-threaded (native) simulator at full optimization,
//! 5. the linear simulator at the scalar baseline level,
//! 6. the native simulator at the scalar baseline level,
//! 7. the generated C compiled by the host compiler with
//!    `-DMATIC_BOUNDS_CHECK` (skipped for non-terminating programs —
//!    the C runtime has no fuel meter — and when no compiler exists).
//!
//! Programs that trap must trap *the same way* everywhere: the legs'
//! structured error kinds ([`matic_interp::ErrorKind`]) are compared, and
//! the C leg's stderr is classified through the same
//! [`matic_interp::classify_message`] rules the library errors use.
//!
//! Case count and seed are env-tunable so CI can run a larger fixed-seed
//! smoke (`MATIC_FUZZ_CASES=500`) without slowing local `cargo test`.

use matic::{arg, CValue, Compiler, Engine, Harness, Interpreter, OptLevel, SimVal};
use matic_benchkit::{from_interp, outputs_close, sim_to_cvalue, to_interp, to_sim};
use matic_interp::{classify_message, ErrorKind};
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

/// Statement budget for every engine. Generated terminating programs stay
/// far below it; the injected `while 1` spin always exhausts it.
const FUEL: u64 = 300_000;

const ENTRY: &str = "fz";

fn cases() -> u64 {
    std::env::var("MATIC_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

fn seed() -> u64 {
    std::env::var("MATIC_FUZZ_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5EED_CAFE)
}

fn cc() -> Option<&'static str> {
    ["cc", "gcc", "clang"].into_iter().find(|cand| {
        Command::new(cand)
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    })
}

// ---- deterministic program generator ---------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in [-1, 1).
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }
}

/// How a generated program is expected to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// Terminates normally with a vector output.
    None,
    /// Reads `v(k)` where the runtime input `k` is past the end.
    OobRead,
    /// Runs `while 1` until the fuel meter trips.
    Spin,
}

struct Case {
    src: String,
    /// Vector input length (both `a` and `b`).
    n: usize,
    /// Value of the scalar input `k`.
    k: f64,
    fault: Fault,
}

/// Emits one well-typed random program over the fixed signature
/// `function y = fz(a, b, k)` with `a`, `b` 1×n vectors and `k` scalar.
/// Every construct used here is supported by all engines; faults are
/// injected only through runtime *values* (`k` as an index) or an
/// explicit spin loop, so legality never depends on luck.
fn gen_case(rng: &mut Rng) -> Case {
    let n = 4 + rng.below(13) as usize; // 4..=16
    let mut vecs: Vec<String> = vec!["a".into(), "b".into()];
    let mut scalars: Vec<String> = vec!["k".into()];
    let mut body = String::new();

    let pick = |rng: &mut Rng, pool: &[String]| -> String {
        pool[rng.below(pool.len() as u64) as usize].clone()
    };

    let nstmt = 2 + rng.below(7);
    for id in 0..nstmt {
        match rng.below(8) {
            0 | 1 => {
                // Element-wise vector arithmetic.
                let x = pick(rng, &vecs);
                let y = pick(rng, &vecs);
                let op = ["+", "-", ".*"][rng.below(3) as usize];
                let dst = format!("w{id}");
                body.push_str(&format!("{dst} = {x} {op} {y};\n"));
                vecs.push(dst);
            }
            2 => {
                // Scalar broadcast.
                let s = pick(rng, &scalars);
                let v = pick(rng, &vecs);
                let dst = format!("w{id}");
                body.push_str(&format!("{dst} = {s} * {v};\n"));
                vecs.push(dst);
            }
            3 => {
                // Elementwise power (strength-reduced by the vectorizer).
                let v = pick(rng, &vecs);
                let p = 2 + rng.below(2); // 2 or 3
                let dst = format!("w{id}");
                body.push_str(&format!("{dst} = {v} .^ {p};\n"));
                vecs.push(dst);
            }
            4 => {
                let v = pick(rng, &vecs);
                let dst = format!("t{id}");
                body.push_str(&format!("{dst} = sum({v});\n"));
                scalars.push(dst);
            }
            5 => {
                let x = pick(rng, &scalars);
                let y = pick(rng, &scalars);
                let op = ["+", "-", "*"][rng.below(3) as usize];
                let dst = format!("t{id}");
                body.push_str(&format!("{dst} = {x} {op} {y};\n"));
                scalars.push(dst);
            }
            6 => {
                // Constant (always in-bounds) element read.
                let v = pick(rng, &vecs);
                let c = 1 + rng.below(n as u64);
                let dst = format!("t{id}");
                body.push_str(&format!("{dst} = {v}({c});\n"));
                scalars.push(dst);
            }
            _ => {
                // A scaling loop, half the time iterated in reverse.
                let s = pick(rng, &scalars);
                let v = pick(rng, &vecs);
                let dst = format!("w{id}");
                let range = if rng.below(2) == 0 {
                    format!("1:{n}")
                } else {
                    format!("{n}:-1:1")
                };
                body.push_str(&format!(
                    "{dst} = zeros(1, {n});\nfor i = {range}\n{dst}(i) = {s} * {v}(i);\nend\n"
                ));
                vecs.push(dst);
            }
        }
    }

    // Ending: plain return, a dynamic read indexed by the runtime input
    // `k` (valid or out of bounds), or a fuel-burning spin.
    let vend = pick(rng, &vecs);
    let (tail, k, fault) = match rng.below(10) {
        0..=4 => (format!("y = {vend};\n"), rng.f64(), Fault::None),
        5..=7 => {
            let k = (1 + rng.below(n as u64)) as f64;
            (
                format!("tr = {vend}(k);\ny = tr * {vend};\n"),
                k,
                Fault::None,
            )
        }
        8 => {
            let k = (n as u64 + 1 + rng.below(3)) as f64;
            (
                format!("tr = {vend}(k);\ny = tr * {vend};\n"),
                k,
                Fault::OobRead,
            )
        }
        _ => (
            format!("q = 0;\nwhile 1\nq = q + 1;\nend\ny = q * {vend};\n"),
            rng.f64(),
            Fault::Spin,
        ),
    };
    body.push_str(&tail);

    Case {
        src: format!("function y = {ENTRY}(a, b, k)\n{body}end\n"),
        n,
        k,
        fault,
    }
}

// ---- outcomes --------------------------------------------------------------

/// What running a program produced: outputs, or a classified error.
#[derive(Debug)]
enum Outcome {
    Values(Vec<CValue>),
    Fail(ErrorKind),
}

fn agree(case: &Case, reference: &Outcome, got: &Outcome, leg: &str) {
    match (reference, got) {
        (Outcome::Values(want), Outcome::Values(have)) => {
            assert_eq!(
                want.len(),
                have.len(),
                "{leg}: output count mismatch\n--- program ---\n{}",
                case.src
            );
            for (w, h) in want.iter().zip(have) {
                outputs_close(h, w, 1e-9).unwrap_or_else(|e| {
                    panic!("{leg}: outputs diverge: {e}\n--- program ---\n{}", case.src)
                });
            }
        }
        (Outcome::Fail(want), Outcome::Fail(have)) => {
            assert_eq!(
                want, have,
                "{leg}: error kind mismatch\n--- program ---\n{}",
                case.src
            );
        }
        _ => panic!(
            "{leg}: outcome mismatch: reference {reference:?} vs {got:?}\n--- program ---\n{}",
            case.src
        ),
    }
}

fn interp_leg(case: &Case, inputs: &[CValue]) -> Outcome {
    let mut interp = Interpreter::from_source(&case.src).expect("generated program parses");
    interp.set_fuel(FUEL);
    match interp.call(ENTRY, inputs.iter().map(to_interp).collect(), 1) {
        Ok(outs) => Outcome::Values(
            outs.iter()
                .map(|v| from_interp(v).expect("printable output"))
                .collect(),
        ),
        Err(e) => Outcome::Fail(e.kind),
    }
}

fn sim_outcome(res: Result<matic::SimOutcome, matic::SimError>) -> Outcome {
    match res {
        Ok(out) => Outcome::Values(out.outputs.iter().map(sim_to_cvalue).collect()),
        Err(e) => Outcome::Fail(e.kind),
    }
}

fn c_leg(case: &Case, compiled: &matic::Compiled, inputs: &[CValue], compiler: &str) -> Outcome {
    let entry = compiled
        .mir
        .function(&compiled.entry)
        .expect("entry in MIR");
    let main_src = Harness
        .main_source(entry, inputs, 1)
        .expect("harness generated");
    let dir = unique_dir();
    let c_path =
        matic_codegen::write_module(&dir, &compiled.c, Some(&main_src)).expect("module written");
    let exe = dir.join("prog");
    let out = Command::new(compiler)
        .args(["-std=c99", "-O0", "-w", "-DMATIC_BOUNDS_CHECK", "-o"])
        .arg(&exe)
        .arg(&c_path)
        .arg("-lm")
        .output()
        .expect("cc invocation");
    assert!(
        out.status.success(),
        "C compilation failed:\n{}\n--- program ---\n{}",
        String::from_utf8_lossy(&out.stderr),
        case.src
    );
    let run = Command::new(&exe).output().expect("kernel runs");
    let _ = std::fs::remove_dir_all(&dir);
    if run.status.success() {
        let parsed = CValue::parse_outputs(&String::from_utf8_lossy(&run.stdout))
            .unwrap_or_else(|e| panic!("bad harness output: {e}\n--- program ---\n{}", case.src));
        Outcome::Values(parsed)
    } else {
        let stderr = String::from_utf8_lossy(&run.stderr).into_owned();
        assert!(
            stderr.contains("matic:"),
            "C kernel failed without a `matic:` diagnostic:\n{stderr}\n--- program ---\n{}",
            case.src
        );
        Outcome::Fail(classify_message(&stderr))
    }
}

fn unique_dir() -> PathBuf {
    let pid = std::process::id();
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    std::env::temp_dir().join(format!("matic_fuzz_{pid}_{t}"))
}

// ---- the fuzz loop ---------------------------------------------------------

#[test]
fn all_engines_agree_on_random_programs() {
    let compiler = cc();
    if compiler.is_none() {
        eprintln!("note: no C compiler found; running without the C leg");
    }
    let mut rng = Rng::new(seed());
    let mut fault_counts = [0usize; 3];
    let total = cases();
    for case_no in 0..total {
        let case = gen_case(&mut rng);
        fault_counts[case.fault as usize] += 1;
        let mut inputs = Vec::with_capacity(3);
        let mut stim = Rng::new(rng.next());
        inputs.push(CValue::row(
            &(0..case.n).map(|_| stim.f64()).collect::<Vec<_>>(),
        ));
        inputs.push(CValue::row(
            &(0..case.n).map(|_| stim.f64()).collect::<Vec<_>>(),
        ));
        inputs.push(CValue::scalar(case.k));

        let tag = |leg: &str| format!("case {case_no} [{leg}]");
        let reference = interp_leg(&case, &inputs);
        if case.fault == Fault::OobRead {
            assert!(
                matches!(reference, Outcome::Fail(ErrorKind::OutOfBounds)),
                "{}: expected an OOB error, got {reference:?}\n--- program ---\n{}",
                tag("interp"),
                case.src
            );
        }
        if case.fault == Fault::Spin {
            assert!(
                matches!(reference, Outcome::Fail(ErrorKind::FuelExhausted)),
                "{}: expected fuel exhaustion, got {reference:?}\n--- program ---\n{}",
                tag("interp"),
                case.src
            );
        }

        let arg_tys = [arg::vector(case.n), arg::vector(case.n), arg::scalar()];
        let sim_inputs: Vec<SimVal> = inputs.iter().map(to_sim).collect();
        for (label, opt) in [("opt", OptLevel::full()), ("base", OptLevel::baseline())] {
            let compiled = Compiler::new()
                .opt_level(opt)
                .compile(&case.src, ENTRY, &arg_tys)
                .unwrap_or_else(|e| {
                    panic!(
                        "{}: generated program failed to compile: {e}\n--- program ---\n{}",
                        tag(label),
                        case.src
                    )
                });

            for engine in [Engine::Linear, Engine::Native] {
                let run = compiled
                    .simulator()
                    .with_engine(engine)
                    .with_fuel(FUEL)
                    .run(sim_inputs.clone());
                agree(
                    &case,
                    &reference,
                    &sim_outcome(run),
                    &tag(&format!("{label}/{engine}")),
                );
            }

            if label == "opt" {
                let machine =
                    matic::AsipMachine::from_shared(Arc::clone(&compiled.spec)).with_fuel(FUEL);
                let walked = machine.run_interpreted(&compiled.mir, ENTRY, sim_inputs.clone());
                agree(
                    &case,
                    &reference,
                    &sim_outcome(walked),
                    &tag("opt/tree-walk"),
                );

                if case.fault != Fault::Spin {
                    if let Some(compiler) = compiler {
                        let c = c_leg(&case, &compiled, &inputs, compiler);
                        agree(&case, &reference, &c, &tag("opt/C"));
                    }
                }
            }
        }
    }
    eprintln!(
        "pipeline fuzz: {total} cases agreed ({} clean, {} oob, {} spin)",
        fault_counts[0], fault_counts[1], fault_counts[2]
    );
}
