//! Hardest end-to-end check: the generated ANSI C (with its emitted
//! runtime and intrinsics headers) is compiled by the *host* C compiler,
//! executed, and its outputs compared against the reference interpreter —
//! for every benchmark, at both optimization levels.
//!
//! Skipped gracefully when no C compiler is installed.

use matic::{CValue, Compiler, Harness, OptLevel};
use matic_benchkit::{outputs_close, SUITE};
use std::path::PathBuf;
use std::process::Command;

fn cc() -> Option<&'static str> {
    ["cc", "gcc", "clang"].into_iter().find(|cand| {
        Command::new(cand)
            .arg("--version")
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false)
    })
}

fn test_size(id: &str) -> usize {
    match id {
        "matmul" => 8,
        "fft" => 64,
        _ => 96,
    }
}

fn unique_dir(tag: &str) -> PathBuf {
    let pid = std::process::id();
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    std::env::temp_dir().join(format!("matic_diff_{tag}_{pid}_{t}"))
}

fn run_c_kernel(
    compiled: &matic::Compiled,
    inputs: &[CValue],
    tag: &str,
    compiler: &str,
) -> Vec<CValue> {
    let entry = compiled
        .mir
        .function(&compiled.entry)
        .expect("entry in MIR");
    let main_src = Harness
        .main_source(entry, inputs, 1)
        .expect("harness generated");
    let dir = unique_dir(tag);
    let c_path =
        matic_codegen::write_module(&dir, &compiled.c, Some(&main_src)).expect("module written");
    let exe = dir.join("prog");
    let out = Command::new(compiler)
        .args(["-std=c99", "-O1", "-w", "-o"])
        .arg(&exe)
        .arg(&c_path)
        .arg("-lm")
        .output()
        .expect("cc invocation");
    assert!(
        out.status.success(),
        "{tag}: C compilation failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let run = Command::new(&exe).output().expect("kernel runs");
    assert!(
        run.status.success(),
        "{tag}: kernel exited with failure:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let parsed = CValue::parse_outputs(&String::from_utf8_lossy(&run.stdout))
        .unwrap_or_else(|e| panic!("{tag}: bad harness output: {e}"));
    let _ = std::fs::remove_dir_all(&dir);
    parsed
}

#[test]
fn generated_c_matches_interpreter_for_every_benchmark() {
    let Some(compiler) = cc() else {
        eprintln!("skipping: no C compiler found");
        return;
    };
    for b in SUITE {
        let n = test_size(b.id);
        let inputs = b.inputs(n, 4242);
        let expected = &b.reference_outputs(&inputs).expect("interp ok")[0];
        for (label, opt) in [("base", OptLevel::baseline()), ("opt", OptLevel::full())] {
            let compiled = Compiler::new()
                .opt_level(opt)
                .compile(b.source, b.entry, &b.arg_types(n))
                .unwrap_or_else(|e| panic!("{} [{label}]: {e}", b.id));
            let outs = run_c_kernel(&compiled, &inputs, &format!("{}_{label}", b.id), compiler);
            assert_eq!(outs.len(), 1, "{} [{label}]: one output expected", b.id);
            outputs_close(&outs[0], expected, 1e-9)
                .unwrap_or_else(|e| panic!("{} [{label}]: {e}", b.id));
        }
    }
}

#[test]
fn generated_c_is_target_portable() {
    // The same kernel generated for different ISA descriptions must all
    // compile and agree — the retargetability claim, checked end to end.
    let Some(compiler) = cc() else {
        eprintln!("skipping: no C compiler found");
        return;
    };
    let b = matic_benchkit::benchmark("cmult").expect("cmult exists");
    let n = 32;
    let inputs = b.inputs(n, 9);
    let expected = &b.reference_outputs(&inputs).expect("interp ok")[0];
    let targets = [
        matic::IsaSpec::dsp16(),
        matic::IsaSpec::scalar_baseline(),
        matic::IsaSpec::with_width(4),
        matic::IsaSpec::with_features(matic::Features {
            simd: false,
            complex: true,
            mac: true,
        }),
    ];
    for spec in targets {
        let name = spec.name.clone();
        let compiled = Compiler::new()
            .target(spec)
            .compile(b.source, b.entry, &b.arg_types(n))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let outs = run_c_kernel(&compiled, &inputs, &format!("retarget_{name}"), compiler);
        outputs_close(&outs[0], expected, 1e-9).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}
