//! Interprocedural integration tests: inlining must preserve semantics
//! (vs. the interpreter, which performs real calls) and expose idioms
//! across call boundaries to the vectorizer.

use matic::{arg, Compiler, OptLevel, SimVal};

/// A dot product whose per-element work lives in a helper function.
const SRC: &str = "\
function s = top(a, b, n)
s = 0;
for i = 1:n
    s = s + prodat(a, b, i);
end
end
function p = prodat(a, b, i)
p = a(i) * b(i);
end";

#[test]
fn inlined_pipeline_matches_interpreter() {
    let n = 32;
    let args = [arg::vector(n), arg::vector(n), arg::scalar()];
    let a: Vec<f64> = (0..n).map(|i| i as f64 - 10.0).collect();
    let b: Vec<f64> = (0..n).map(|i| 2.0 * i as f64 + 1.0).collect();

    let mut interp = matic::Interpreter::from_source(SRC).expect("parses");
    let expected = interp
        .call(
            "top",
            vec![
                matic_benchkit::to_interp(&matic::CValue::row(&a)),
                matic_benchkit::to_interp(&matic::CValue::row(&b)),
                matic::Value::scalar(n as f64),
            ],
            1,
        )
        .expect("interp ok")[0]
        .as_matrix()
        .unwrap()
        .as_real_scalar()
        .unwrap();

    let compiled = Compiler::new()
        .compile(SRC, "top", &args)
        .expect("compiles");
    let out = compiled
        .simulate(vec![
            SimVal::row(&a),
            SimVal::row(&b),
            SimVal::scalar(n as f64),
        ])
        .expect("simulates");
    assert_eq!(out.outputs[0].as_cx().unwrap().re, expected);
}

#[test]
fn inlining_exposes_mac_across_call_boundary() {
    let n = 256;
    let args = [arg::vector(n), arg::vector(n), arg::scalar()];
    let full = Compiler::new()
        .compile(SRC, "top", &args)
        .expect("compiles");
    assert_eq!(
        full.report.loops.macs, 1,
        "after inlining the loop body is a recognizable MAC: {:?}",
        full.report
    );
    // Without inlining the call blocks recognition.
    let no_inline = Compiler::new()
        .opt_level(OptLevel {
            inline: false,
            ..OptLevel::full()
        })
        .compile(SRC, "top", &args)
        .expect("compiles");
    assert_eq!(no_inline.report.loops.macs, 0);

    // And the cycle counts show it.
    let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
    let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
    let inputs = vec![SimVal::row(&a), SimVal::row(&b), SimVal::scalar(n as f64)];
    let with = full.simulate(inputs.clone()).expect("sim").cycles.total;
    let without = no_inline.simulate(inputs).expect("sim").cycles.total;
    assert!(
        with * 3 < without,
        "inlining+vectorization should win big: {with} vs {without}"
    );
}

#[test]
fn generated_c_has_no_helper_call_after_inlining() {
    let compiled = Compiler::new()
        .compile(
            SRC,
            "top",
            &[arg::vector(16), arg::vector(16), arg::scalar()],
        )
        .expect("compiles");
    // The helper is still emitted (it is a public function of the module)
    // but the entry must not call it.
    let body_start = compiled
        .c
        .source
        .find("void mt_top(const")
        .and_then(|p| compiled.c.source[p..].find('{').map(|q| p + q))
        .expect("entry body");
    let body_end = compiled.c.source[body_start..]
        .find("\n}")
        .map(|q| body_start + q)
        .expect("body end");
    let body = &compiled.c.source[body_start..body_end];
    assert!(
        !body.contains("mt_prodat("),
        "entry still calls the helper:\n{body}"
    );
}

#[test]
fn recursion_still_compiles_and_runs() {
    let src = "function y = fact(n)\nif n <= 1\n y = 1;\nelse\n y = n * fact(n - 1);\nend\nend";
    let compiled = Compiler::new()
        .compile(src, "fact", &[arg::scalar()])
        .expect("compiles");
    assert!(compiled.c.source.contains("mt_fact(")); // self-call retained
    let out = compiled
        .simulate(vec![SimVal::scalar(6.0)])
        .expect("simulates");
    assert_eq!(out.outputs[0].as_cx().unwrap().re, 720.0);
}
